//===-- core/AmpSearch.cpp - Algorithm based on Maximal job Price ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"

#include "core/SearchCommon.h"

#include <algorithm>

using namespace ecosched;

std::optional<Window>
AmpSearch::findWindow(const SlotList &List, const ResourceRequest &Request,
                      SearchStats *Stats) const {
  ECOSCHED_CHECK(Request.NodeCount > 0,
                 "request must ask for at least one slot, got {}",
                 Request.NodeCount);
  ECOSCHED_DVALIDATE(List.validate());
  const size_t Needed = static_cast<size_t>(Request.NodeCount);
  const double Budget = Request.budget();
  std::vector<const Slot *> Group;
  std::vector<const Slot *> Cheapest;
  SearchStats Local;

  for (const Slot &S : List) {
    if (approxGe(S.Start, Request.Deadline))
      break; // Sorted list: no later slot can meet the deadline.
    ++Local.SlotsExamined;
    // Steps 1/3: accumulate slots under conditions 2a and 2b only; the
    // per-slot price condition 2c is deliberately dropped.
    if (!detail::meetsPerformance(S, Request))
      continue;
    if (!detail::meetsLength(S, Request))
      continue;
    if (!detail::fitsDeadline(S, S.Start, Request))
      continue;

    const double WindowStart = S.Start;
    std::erase_if(Group, [&](const Slot *G) {
      return !G->coversFrom(WindowStart, G->runtimeFor(Request.Volume)) ||
             !detail::fitsDeadline(*G, WindowStart, Request);
    });
    Group.push_back(&S);
    Local.GroupOperations += Group.size();
    Local.GroupPeak = std::max(Local.GroupPeak, Group.size());

    if (Group.size() < Needed)
      continue;

    // Step 2: sort the alive slots by their usage cost and test whether
    // the N cheapest fit the job budget. Cheapest reuses its capacity
    // across iterations, so the copy is pointer-sized writes only.
    Cheapest.assign(Group.begin(), Group.end());
    std::partial_sort(Cheapest.begin(),
                      Cheapest.begin() + static_cast<long>(Needed),
                      Cheapest.end(), [&](const Slot *A, const Slot *B) {
                        const double CostA =
                            detail::slotUsageCost(*A, Request);
                        const double CostB =
                            detail::slotUsageCost(*B, Request);
                        // Exact comparison: comparator must stay a
                        // strict weak ordering.
                        if (CostA != CostB)
                          return CostA < CostB;
                        return A->NodeId < B->NodeId;
                      });
    Cheapest.resize(Needed);
    Local.GroupOperations += Group.size();

    double Total = 0.0;
    for (const Slot *C : Cheapest)
      Total += detail::slotUsageCost(*C, Request);
    if (approxLe(Total, Budget)) {
      if (Stats)
        *Stats += Local;
      return detail::buildWindow(WindowStart, Cheapest, Request);
    }
  }
  if (Stats)
    *Stats += Local;
  return std::nullopt;
}
