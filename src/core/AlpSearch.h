//===-- core/AlpSearch.h - Algorithm based on Local Price ----------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ALP — the Algorithm based on Local Price of slots (Section 3). A
/// single forward scan over the ordered slot list accumulates slots that
/// satisfy the performance (2a), length (2b), and *per-slot* price cap
/// (2c) conditions; slots whose remaining length expires when the window
/// start advances are dropped (step 3). The first time the working group
/// reaches N slots, the window is returned. Linear in the number of
/// slots: the scan never moves backwards and every slot enters and
/// leaves the group at most once.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_ALPSEARCH_H
#define ECOSCHED_CORE_ALPSEARCH_H

#include "core/SearchAlgorithm.h"

namespace ecosched {

/// The ALP slot-set search.
class AlpSearch : public SlotSearchAlgorithm {
public:
  std::string_view name() const override { return "ALP"; }

  std::optional<Window>
  findWindow(const SlotList &List, const ResourceRequest &Request,
             SearchStats *Stats = nullptr) const override;

  /// Conditions 2a/2b/2c plus the own-start deadline check, all
  /// request-static and shrink-monotone.
  bool admits(const Slot &S, const ResourceRequest &Request) const override;

  /// Remainder fast path: performance and price cap are invariant under
  /// span shrinking, so only condition 2b (length) and the own-start
  /// deadline are re-checked.
  bool admitsRemainder(const Slot &Piece,
                       const ResourceRequest &Request) const override;

  /// Scan that skips the static predicate re-checks on a SlotFilter view.
  std::optional<Window>
  findWindowFiltered(const SlotList &Filtered,
                     const ResourceRequest &Request,
                     SearchStats *Stats = nullptr) const override;

  /// ALP's output is a pure function of the per-start alive-slot sets,
  /// so member-intact speculative windows survive list damage
  /// (docs/PERFORMANCE.md).
  bool supportsSpeculativeReuse() const override { return true; }
};

} // namespace ecosched

#endif // ECOSCHED_CORE_ALPSEARCH_H
