//===-- tests/core/VirtualOrganizationTest.cpp - VO loop tests ------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/VirtualOrganization.h"

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

Job makeJob(int Id, int Nodes, double Volume, double MaxPrice) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = Nodes;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = 1.0;
  J.Request.MaxUnitPrice = MaxPrice;
  return J;
}

ComputingDomain makeDomain() {
  ComputingDomain D;
  D.addNode(1.0, 1.0, "n0");
  D.addNode(2.0, 1.5, "n1");
  D.addNode(2.0, 1.5, "n2");
  return D;
}

struct VoFixture {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler;
  VoFixture() : Scheduler(Amp, Dp) {}
};

} // namespace

TEST(VirtualOrganizationTest, SchedulesAndCompletesJobs) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 200.0;
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);

  Vo.submit(makeJob(1, 1, 100.0, 2.0));
  Vo.submit(makeJob(2, 1, 80.0, 2.0));

  const auto Report = Vo.runIteration();
  EXPECT_EQ(Report.QueueLength, 2u);
  EXPECT_EQ(Report.Committed, 2u);
  EXPECT_EQ(Vo.queueLength(), 0u);
  EXPECT_DOUBLE_EQ(Vo.now().value(), 200.0);

  // Keep iterating with an empty queue until the jobs finish.
  for (int I = 0; I < 5; ++I)
    Vo.runIteration();
  EXPECT_EQ(Vo.completed().size(), 2u);
  EXPECT_GT(Vo.totalIncome().value(), 0.0);
}

TEST(VirtualOrganizationTest, CommittedReservationsAppearInDomain) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  // Short period: the reservation is still live after the iteration's
  // clock advance (advanceTo drops fully elapsed occupancy).
  Cfg.IterationPeriod = 20.0;
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);
  Vo.submit(makeJob(1, 2, 100.0, 2.0));
  const auto Report = Vo.runIteration();
  ASSERT_EQ(Report.Committed, 1u);
  EXPECT_GT(Vo.domain().externalLoad(), 0.0);
}

TEST(VirtualOrganizationTest, ImpossibleJobStaysQueued) {
  VoFixture F;
  VirtualOrganization Vo(makeDomain(), F.Scheduler);
  Vo.submit(makeJob(1, 9, 100.0, 2.0)); // 9 nodes never available.
  const auto Report = Vo.runIteration();
  EXPECT_EQ(Report.Committed, 0u);
  EXPECT_EQ(Vo.queueLength(), 1u);
}

TEST(VirtualOrganizationTest, MaxAttemptsDropsHopelessJobs) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  Cfg.MaxAttempts = 3;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);
  Vo.submit(makeJob(1, 9, 100.0, 2.0));
  size_t DroppedAt = 0;
  for (size_t I = 1; I <= 5; ++I) {
    const auto Report = Vo.runIteration();
    if (Report.Dropped > 0) {
      DroppedAt = I;
      break;
    }
  }
  EXPECT_EQ(DroppedAt, 3u);
  EXPECT_EQ(Vo.queueLength(), 0u);
  ASSERT_EQ(Vo.dropped().size(), 1u);
  EXPECT_EQ(Vo.dropped()[0], 1);
}

TEST(VirtualOrganizationTest, LaterSubmissionsScheduleAroundEarlier) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  // Short iteration period: the first job's reservations are still live
  // when the second batch is scheduled.
  Cfg.IterationPeriod = 50.0;
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);
  Vo.submit(makeJob(1, 3, 150.0, 2.0)); // Occupies all nodes a while.
  ASSERT_EQ(Vo.runIteration().Committed, 1u);

  Vo.submit(makeJob(2, 3, 100.0, 2.0));
  const auto Report = Vo.runIteration();
  ASSERT_EQ(Report.Committed, 1u);
  // The second window must not overlap the first job's reservations:
  // reserveWindow() would have rejected the commit otherwise, and the
  // domain accounts both loads.
  const double Load = Vo.domain().externalLoad();
  EXPECT_GT(Load, 0.0);
  EXPECT_EQ(Vo.queueLength(), 0u);
}

TEST(VirtualOrganizationTest, QueuedBudgetFactorHook) {
  VoFixture F;
  // A single expensive-but-fast node: with the default budget the job
  // fits; with a tight factor it cannot be placed.
  ComputingDomain D;
  D.addNode(2.0, 3.5, "fast"); // Cost = 3.5 * 100/2 = 175.
  VirtualOrganization Vo(std::move(D), F.Scheduler);

  Job J = makeJob(1, 1, 100.0, 2.0); // Budget = rho * 2 * 100 = 200rho.
  Vo.submit(J);
  Vo.setQueuedBudgetFactor(0.5); // Budget 100 < 175: unplaceable.
  EXPECT_EQ(Vo.runIteration().Committed, 0u);
  EXPECT_EQ(Vo.queueLength(), 1u);

  Vo.setQueuedBudgetFactor(1.0); // Budget 200 >= 175: fits now.
  EXPECT_EQ(Vo.runIteration().Committed, 1u);
}

TEST(VirtualOrganizationTest, CancelQueuedJob) {
  VoFixture F;
  VirtualOrganization Vo(makeDomain(), F.Scheduler);
  Vo.submit(makeJob(1, 9, 100.0, 2.0)); // Unplaceable: stays queued.
  Vo.runIteration();
  ASSERT_EQ(Vo.queueLength(), 1u);
  EXPECT_TRUE(Vo.cancelJob(1));
  EXPECT_EQ(Vo.queueLength(), 0u);
  EXPECT_FALSE(Vo.cancelJob(1)); // Already gone.
}

TEST(VirtualOrganizationTest, CancelRunningJobReleasesReservations) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 20.0; // Reservation still live afterwards.
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);
  Vo.submit(makeJob(1, 2, 100.0, 2.0));
  ASSERT_EQ(Vo.runIteration().Committed, 1u);
  ASSERT_GT(Vo.domain().externalLoad(), 0.0);

  EXPECT_TRUE(Vo.cancelJob(1));
  EXPECT_DOUBLE_EQ(Vo.domain().externalLoad(), 0.0);
  // The job never completes and owes nothing.
  for (int I = 0; I < 5; ++I)
    Vo.runIteration();
  EXPECT_TRUE(Vo.completed().empty());
  EXPECT_DOUBLE_EQ(Vo.totalIncome().value(), 0.0);
}

TEST(VirtualOrganizationTest, CancelUnknownJobReturnsFalse) {
  VoFixture F;
  VirtualOrganization Vo(makeDomain(), F.Scheduler);
  EXPECT_FALSE(Vo.cancelJob(12345));
}

TEST(VirtualOrganizationTest, CompletedJobRecordsAttempts) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 500.0;
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);
  Vo.submit(makeJob(1, 1, 100.0, 2.0));
  for (int I = 0; I < 3 && Vo.completed().empty(); ++I)
    Vo.runIteration();
  ASSERT_EQ(Vo.completed().size(), 1u);
  const CompletedJob &C = Vo.completed()[0];
  EXPECT_EQ(C.JobId, 1);
  EXPECT_EQ(C.Attempts, 1);
  EXPECT_GT(C.EndTime, C.StartTime);
  EXPECT_GT(C.Cost, 0.0);
}
