file(REMOVE_RECURSE
  "../bench/ablation_domain_workload"
  "../bench/ablation_domain_workload.pdb"
  "CMakeFiles/ablation_domain_workload.dir/ablation_domain_workload.cpp.o"
  "CMakeFiles/ablation_domain_workload.dir/ablation_domain_workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_domain_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
