# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(repro_claims "/root/repo/build-review/bench/repro_summary" "--iterations=400")
set_tests_properties(repro_claims PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
