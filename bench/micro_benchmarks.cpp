//===-- bench/micro_benchmarks.cpp - google-benchmark microbenches --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the hot paths: ALP/AMP/backfill window search as
/// a function of the slot-list size (the Section 3 complexity claim in
/// wall-clock form), slot subtraction, the alternative search sweep,
/// and the backward-run DP as a function of the grid resolution.
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "core/BatchSearch.h"
#include "core/BicriteriaOptimizer.h"
#include "core/DpOptimizer.h"
#include "core/SlotFilter.h"
#include "engine/MultiVoDriver.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "sim/SlotIntervalIndex.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

using namespace ecosched;

namespace {

SlotList makeList(int SlotCount, uint64_t Seed) {
  SlotGeneratorConfig Cfg;
  Cfg.MinSlotCount = SlotCount;
  Cfg.MaxSlotCount = SlotCount;
  RandomGenerator Rng(Seed);
  return SlotGenerator(Cfg).generate(Rng);
}

ResourceRequest makeRequest(int Nodes) {
  ResourceRequest Req;
  Req.NodeCount = Nodes;
  Req.Volume = 100.0;
  Req.MinPerformance = 1.3;
  Req.MaxUnitPrice = 1.25 * 2.0; // ~1.25 * 1.7^1.3.
  return Req;
}

void BM_AlpSearch(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 42);
  const ResourceRequest Req = makeRequest(4);
  AlpSearch Alp;
  for (auto _ : State)
    benchmark::DoNotOptimize(Alp.findWindow(List, Req));
  State.SetComplexityN(State.range(0));
}

void BM_AmpSearch(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 42);
  const ResourceRequest Req = makeRequest(4);
  AmpSearch Amp;
  for (auto _ : State)
    benchmark::DoNotOptimize(Amp.findWindow(List, Req));
  State.SetComplexityN(State.range(0));
}

void BM_AlpSearchWorstCase(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 42);
  ResourceRequest Req = makeRequest(100000); // Unsatisfiable: full scan.
  AlpSearch Alp;
  for (auto _ : State)
    benchmark::DoNotOptimize(Alp.findWindow(List, Req));
  State.SetComplexityN(State.range(0));
}

void BM_BackfillSearchWorstCase(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 42);
  ResourceRequest Req = makeRequest(100000);
  BackfillSearch Backfill;
  for (auto _ : State)
    benchmark::DoNotOptimize(Backfill.findWindow(List, Req));
  State.SetComplexityN(State.range(0));
}

void BM_SlotSubtraction(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 7);
  for (auto _ : State) {
    SlotList Work = List;
    // Subtract a span from the middle of every fourth slot.
    for (size_t I = 0; I < Work.size(); I += 4) {
      const Slot S = Work[I];
      const double Mid = (S.Start + S.End) / 2.0;
      benchmark::DoNotOptimize(
          Work.subtract(S.NodeId, TimePoint(S.Start), TimePoint(Mid)));
    }
    benchmark::DoNotOptimize(Work.size());
  }
}

/// A span past every slot on an existing node: a guaranteed containment
/// miss that forces the linear scan to walk the whole list (no start
/// ever exceeds the probe's, so the sortedness break never fires) while
/// the interval index answers from two binary searches.
double pastAllSlots(const SlotList &List) {
  double MaxEnd = 0.0;
  for (const Slot &S : List)
    MaxEnd = std::max(MaxEnd, S.End);
  return MaxEnd + 1.0;
}

/// 64 containment hits spread evenly across the list, each splicing a
/// half-slot span out of a fresh copy. Copies carry the index, so each
/// iteration pays the index memcpy plus 64 indexed probes and O(n)
/// vector splices — the copy-then-damage pattern of the engine's
/// snapshot flows. The Miss variants isolate the probe complexity
/// itself.
void BM_SlotListProbeSubtract(benchmark::State &State) {
  SlotList Master = makeList(static_cast<int>(State.range(0)), 7);
  Master.subtract(Master[0].NodeId, TimePoint(pastAllSlots(Master)), TimePoint(pastAllSlots(Master) + 1.0)); // Builds the index; no hit.
  std::vector<Slot> Probes;
  const size_t Stride = std::max<size_t>(1, Master.size() / 64);
  for (size_t I = 0; I < Master.size() && Probes.size() < 64; I += Stride)
    Probes.push_back(Master[I]);
  for (auto _ : State) {
    SlotList Work = Master;
    for (const Slot &S : Probes) {
      const double Mid = (S.Start + S.End) / 2.0;
      benchmark::DoNotOptimize(Work.subtract(S.NodeId, TimePoint(S.Start), TimePoint(Mid)));
    }
    benchmark::DoNotOptimize(Work.size());
  }
  State.SetComplexityN(State.range(0));
}

/// The same 64 hit probes through the retained linear scan, for the
/// before/after comparison (capped earlier: each probe walks to its
/// container front to back).
void BM_SlotListProbeSubtractLinear(benchmark::State &State) {
  const SlotList Master = makeList(static_cast<int>(State.range(0)), 7);
  std::vector<Slot> Probes;
  const size_t Stride = std::max<size_t>(1, Master.size() / 64);
  for (size_t I = 0; I < Master.size() && Probes.size() < 64; I += Stride)
    Probes.push_back(Master[I]);
  for (auto _ : State) {
    SlotList Work = Master;
    for (const Slot &S : Probes) {
      const double Mid = (S.Start + S.End) / 2.0;
      benchmark::DoNotOptimize(Work.subtractLinear(S.NodeId, TimePoint(S.Start), TimePoint(Mid)));
    }
    benchmark::DoNotOptimize(Work.size());
  }
  State.SetComplexityN(State.range(0));
}

/// Pure probe scaling, no mutation: a guaranteed miss answered by the
/// interval index in O(log n).
void BM_SlotListProbeMiss(benchmark::State &State) {
  SlotList List = makeList(static_cast<int>(State.range(0)), 7);
  const double Miss = pastAllSlots(List);
  const int Node = List[0].NodeId;
  List.subtract(Node, TimePoint(Miss), TimePoint(Miss + 1.0)); // Builds the index; no hit.
  for (auto _ : State)
    benchmark::DoNotOptimize(List.subtract(Node, TimePoint(Miss), TimePoint(Miss + 1.0)));
  State.SetComplexityN(State.range(0));
}

/// The same guaranteed miss through the linear scan: a full O(n) walk.
void BM_SlotListProbeMissLinear(benchmark::State &State) {
  SlotList List = makeList(static_cast<int>(State.range(0)), 7);
  const double Miss = pastAllSlots(List);
  const int Node = List[0].NodeId;
  for (auto _ : State)
    benchmark::DoNotOptimize(List.subtractLinear(Node, TimePoint(Miss), TimePoint(Miss + 1.0)));
  State.SetComplexityN(State.range(0));
}

void BM_AlternativeSearchSweep(benchmark::State &State) {
  RandomGenerator Rng(11);
  const SlotList List = makeList(135, 11);
  const Batch Jobs = JobGenerator().generate(Rng);
  AmpSearch Amp;
  for (auto _ : State) {
    const AlternativeSet Alts = AlternativeSearch(Amp).run(List, Jobs);
    benchmark::DoNotOptimize(Alts.total());
  }
}

/// Shared workload for the sweep-acceleration benches: the Section 5
/// shape scaled to production size (BENCH_3.json tracks these numbers;
/// see docs/PERFORMANCE.md).
constexpr int SweepSlots = 4096;
constexpr int SweepJobs = 32;
constexpr size_t SweepPasses = 10;

Batch makeSweepBatch() {
  JobGeneratorConfig Cfg;
  Cfg.MinJobs = SweepJobs;
  Cfg.MaxJobs = SweepJobs;
  RandomGenerator Rng(23);
  return JobGenerator(Cfg).generate(Rng);
}

/// The textbook serial sweep (no filter, no pool): the reference the
/// threaded bench's speedup target is measured against.
void BM_AlternativeSearchSerialBaseline(benchmark::State &State) {
  const SlotList List = makeList(SweepSlots, 23);
  const Batch Jobs = makeSweepBatch();
  AlpSearch Alp;
  AlternativeSearch::Config Cfg;
  Cfg.MaxPasses = SweepPasses;
  Cfg.UseFilter = false;
  const AlternativeSearch Search(Alp, Cfg);
  for (auto _ : State) {
    const AlternativeSet Alts = Search.run(List, Jobs);
    benchmark::DoNotOptimize(Alts.total());
  }
}

/// The accelerated sweep (admissibility index + speculative sharding)
/// on the same workload; the argument is the pool size.
void BM_AlternativeSearchThreaded(benchmark::State &State) {
  const SlotList List = makeList(SweepSlots, 23);
  const Batch Jobs = makeSweepBatch();
  AlpSearch Alp;
  ThreadPool Pool(static_cast<size_t>(State.range(0)));
  AlternativeSearch::Config Cfg;
  Cfg.MaxPasses = SweepPasses;
  Cfg.Pool = &Pool;
  const AlternativeSearch Search(Alp, Cfg);
  for (auto _ : State) {
    const AlternativeSet Alts = Search.run(List, Jobs);
    benchmark::DoNotOptimize(Alts.total());
  }
}

/// The unsatisfiable worst-case scan with a finite deadline: the
/// binary-searched scan horizon (SlotList::scanEndBefore) bounds the
/// work to a fixed prefix, so the cost stays flat as the list grows —
/// compare against BM_AlpSearchWorstCase's O(n).
void BM_AlpSearchDeadlineBounded(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 42);
  ResourceRequest Req = makeRequest(100000); // Unsatisfiable: full scan.
  Req.Deadline = List[std::min<size_t>(List.size() - 1, 512)].Start;
  AlpSearch Alp;
  for (auto _ : State)
    benchmark::DoNotOptimize(Alp.findWindow(List, Req));
  State.SetComplexityN(State.range(0));
}

/// From-scratch construction of the per-job admissible views: the
/// once-per-sweep cost the incremental maintenance amortizes away.
void BM_SlotFilterRebuild(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 29);
  JobGeneratorConfig JobsCfg;
  JobsCfg.MinJobs = 8;
  JobsCfg.MaxJobs = 8;
  RandomGenerator Rng(29);
  const Batch Jobs = JobGenerator(JobsCfg).generate(Rng);
  AmpSearch Amp;
  for (auto _ : State) {
    SlotFilter Filter(List, Jobs, Amp);
    benchmark::DoNotOptimize(Filter.jobCount());
  }
  State.SetComplexityN(State.range(0));
}

/// View construction when every job has a finite deadline: the
/// scan-horizon cutoff lets filteredCopy() test only the reachable
/// prefix, so the build cost tracks the horizon, not the master size.
void BM_SlotFilterRebuildDeadline(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 29);
  JobGeneratorConfig JobsCfg;
  JobsCfg.MinJobs = 8;
  JobsCfg.MaxJobs = 8;
  RandomGenerator Rng(29);
  Batch Jobs = JobGenerator(JobsCfg).generate(Rng);
  const double Horizon =
      List[std::min<size_t>(List.size() - 1, 1024)].Start;
  for (Job &J : Jobs)
    J.Request.Deadline = Horizon;
  AmpSearch Amp;
  for (auto _ : State) {
    SlotFilter Filter(List, Jobs, Amp);
    benchmark::DoNotOptimize(Filter.jobCount());
  }
  State.SetComplexityN(State.range(0));
}

/// One engine iteration of an 8-tenant multi-VO fleet; the argument is
/// the pool size. Measures the fan-out overhead of the concurrent
/// driver against its own serial execution (Arg(1) runs inline).
void BM_MultiVoDriver(benchmark::State &State) {
  constexpr size_t Tenants = 8;
  constexpr size_t Rounds = 10;
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  ThreadPool Pool(static_cast<size_t>(State.range(0)));
  const auto Arrivals = [](size_t VoIndex, size_t Iteration,
                           RandomGenerator &Rng) {
    Batch B;
    const int64_t Count = Rng.uniformInt(1, 3);
    for (int64_t K = 0; K < Count; ++K) {
      Job J;
      J.Id = static_cast<int>(VoIndex * 100000 + Iteration * 100 + K);
      J.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 3));
      J.Request.Volume = Rng.uniformReal(50.0, 150.0);
      J.Request.MinPerformance = 1.0;
      J.Request.MaxUnitPrice = 2.5;
      B.push_back(J);
    }
    return B;
  };
  for (auto _ : State) {
    State.PauseTiming();
    MultiVoDriver::Config Cfg;
    Cfg.Pool = &Pool;
    MultiVoDriver Driver(Cfg);
    for (size_t T = 0; T < Tenants; ++T) {
      ComputingDomain D;
      for (int Node = 0; Node < 6; ++Node)
        D.addNode(1.0 + 0.25 * Node, 1.0 + 0.2 * Node);
      VirtualOrganization::Config VoCfg;
      VoCfg.IterationPeriod = 100.0;
      VoCfg.HorizonLength = 500.0;
      Driver.addTenant(std::move(D), Scheduler, VoCfg, 1000 + T);
    }
    State.ResumeTiming();
    Driver.run(Rounds, Arrivals);
    benchmark::DoNotOptimize(Driver.totalCompleted());
  }
}

/// Steady-state VO iterations over a large fragmented domain: the
/// first argument is the published slot count (Nodes = slots/512, 512
/// free spans per node inside the horizon), the second selects the
/// from-scratch rebuild (0) or the persistent filter (1). The busy
/// pattern occupies 40 time units around every multiple of the
/// iteration period, so each iteration's master delta is exactly two
/// spans per node (one retired in the past, one admitted at the
/// horizon tail) against a slot list that stays at the full size — the
/// regime where per-call view rebuilds are pure O(domain) waste. The
/// batch is 32 identical unplaceable jobs (they ask for two nodes but
/// only node 0 meets MinPerformance), so every view is carried across
/// iterations unchanged. PERFORMANCE.md quotes the 0-vs-1 ratio.
void BM_VoIterationSteadyState(benchmark::State &State) {
  constexpr double Period = 100.0;
  constexpr int SpansPerNode = 512;
  constexpr double Horizon = SpansPerNode * Period;
  constexpr size_t MeasuredIterations = 8;
  const int Nodes = static_cast<int>(State.range(0)) / SpansPerNode;
  const bool Reuse = State.range(1) != 0;

  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler::Config SchedCfg;
  SchedCfg.Search.MaxAlternativesPerJob = 2;
  Metascheduler Scheduler(Amp, Dp, SchedCfg);

  ComputingDomain Proto;
  for (int Node = 0; Node < Nodes; ++Node)
    Proto.addNode(Node == 0 ? 2.0 : 1.0, 1.0);
  const double Coverage =
      Horizon + Period * static_cast<double>(MeasuredIterations + 4);
  for (int Node = 0; Node < Nodes; ++Node)
    for (double T = 0.0; T < Coverage; T += Period)
      Proto.addLocalTask(Node, TimePoint(std::max(0.0, T - 20.0)), TimePoint(T + 20.0));

  for (auto _ : State) {
    State.PauseTiming();
    VirtualOrganization::Config VoCfg;
    VoCfg.IterationPeriod = Period;
    VoCfg.HorizonLength = Horizon;
    VoCfg.ReuseFilter = Reuse;
    VirtualOrganization Vo(Proto, Scheduler, VoCfg);
    for (int J = 0; J < 32; ++J) {
      Job Spec;
      Spec.Id = J;
      Spec.Request.NodeCount = 2;
      Spec.Request.Volume = 100.0;
      Spec.Request.MinPerformance = 1.5;
      Spec.Request.MaxUnitPrice = 10.0;
      Vo.submit(Spec);
    }
    Vo.runIteration(); // Warm-up: first sync builds the views.
    State.ResumeTiming();
    for (size_t I = 0; I < MeasuredIterations; ++I)
      benchmark::DoNotOptimize(Vo.runIteration().QueueLength);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(MeasuredIterations));
}

/// Snapshot save + load round trip of a mid-run VO
/// (docs/PERSISTENCE.md): the argument is the node count of the
/// domain, and the VO carries a populated queue, running and completed
/// reservations, and an engaged persistent filter so every layer's
/// saveState/loadState shows up in the measurement. The cost model is
/// dominated by the domain occupancy records and the canonical-replay
/// validation on load.
void BM_SnapshotSaveLoad(benchmark::State &State) {
  const int Nodes = static_cast<int>(State.range(0));

  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);

  ComputingDomain Proto;
  for (int Node = 0; Node < Nodes; ++Node) {
    Proto.addNode(1.0 + 0.25 * (Node % 4), 1.0 + 0.2 * (Node % 5));
    for (double T = 0.0; T < 1000.0; T += 200.0)
      Proto.addLocalTask(Node, TimePoint(T), TimePoint(T + 40.0));
  }

  VirtualOrganization::Config VoCfg;
  VoCfg.IterationPeriod = 100.0;
  VoCfg.HorizonLength = 500.0;
  VirtualOrganization Vo(std::move(Proto), Scheduler, VoCfg);
  RandomGenerator Rng(77);
  for (int Iter = 0; Iter < 4; ++Iter) {
    for (int J = 0; J < 8; ++J) {
      Job Spec;
      Spec.Id = Iter * 8 + J;
      Spec.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 3));
      Spec.Request.Volume = Rng.uniformReal(50.0, 150.0);
      Spec.Request.MinPerformance = 1.0;
      Spec.Request.MaxUnitPrice = 2.5;
      Vo.submit(Spec);
    }
    Vo.runIteration();
  }

  for (auto _ : State) {
    const std::string Text = Vo.saveSnapshotText();
    VirtualOrganization Restored(ComputingDomain(), Scheduler);
    const bool Loaded = Restored.loadSnapshotText(Text);
    benchmark::DoNotOptimize(Loaded);
    benchmark::DoNotOptimize(Text.size());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}

/// Interval-index maintenance under churn as a function of the
/// compaction trigger; the argument is the threshold
/// (SlotIntervalIndex::DefaultCompactThreshold = 128 is production).
/// Low thresholds pay the O(n) merge often but keep probes lean; high
/// ones batch the merge but wade through tombstones and the pending
/// buffer on every probe — the bench shows where the middle lies.
void BM_SlotIndexCompaction(benchmark::State &State) {
  constexpr int Nodes = 16;
  constexpr int PerNode = 256;
  std::vector<Slot> Slots;
  for (int Node = 0; Node < Nodes; ++Node)
    for (int I = 0; I < PerNode; ++I) {
      const double Start = 100.0 * I + 2.0 * Node;
      Slots.emplace_back(Node, 1.0, 1.0, Start, Start + 60.0);
    }
  std::sort(Slots.begin(), Slots.end(), slotStartLess);
  for (auto _ : State) {
    SlotIntervalIndex Index;
    Index.setCompactThreshold(static_cast<size_t>(State.range(0)));
    Index.buildFrom(Slots);
    // Retire and re-admit every 7th slot, probing as we go — the
    // persistent filter's steady-state mutation pattern.
    for (size_t I = 0; I < Slots.size(); I += 7) {
      const Slot &S = Slots[I];
      Index.noteErase(S);
      Index.noteInsert(S);
      benchmark::DoNotOptimize(
          Index.findContainer(S.NodeId, TimePoint(S.Start), TimePoint(S.End)));
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Slots.size() / 7 + 1));
}

void BM_DpOptimizer(benchmark::State &State) {
  RandomGenerator Rng(13);
  CombinationProblem P;
  for (int J = 0; J < 6; ++J) {
    std::vector<AlternativeValue> Alts;
    for (int A = 0; A < 30; ++A)
      Alts.push_back({Rng.uniformReal(50.0, 500.0),
                      Rng.uniformReal(20.0, 150.0)});
    P.PerJob.push_back(std::move(Alts));
  }
  P.Objective = MeasureKind::Time;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Cost;
  P.Limit = 1500.0;
  const DpOptimizer Dp(static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(Dp.solve(P));
}

void BM_OnePassBatchScheduler(benchmark::State &State) {
  RandomGenerator Rng(17);
  const SlotList List = makeList(static_cast<int>(State.range(0)), 17);
  const Batch Jobs = JobGenerator().generate(Rng);
  OnePassBatchScheduler Scheduler;
  for (auto _ : State)
    benchmark::DoNotOptimize(Scheduler.assign(List, Jobs));
  State.SetComplexityN(State.range(0));
}

void BM_BicriteriaDp(benchmark::State &State) {
  RandomGenerator Rng(19);
  BicriteriaProblem P;
  for (int J = 0; J < 5; ++J) {
    std::vector<AlternativeValue> Alts;
    for (int A = 0; A < 25; ++A)
      Alts.push_back({Rng.uniformReal(50.0, 500.0),
                      Rng.uniformReal(20.0, 150.0)});
    P.PerJob.push_back(std::move(Alts));
  }
  P.Budget = 1200.0;
  P.TimeQuota = 450.0;
  P.CostWeight = 0.5;
  const BicriteriaDpOptimizer Dp(static_cast<size_t>(State.range(0)),
                                 static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(Dp.solve(P));
}

} // namespace

BENCHMARK(BM_AlpSearch)->RangeMultiplier(4)->Range(128, 8192);
BENCHMARK(BM_AmpSearch)->RangeMultiplier(4)->Range(128, 8192);
BENCHMARK(BM_AlpSearchWorstCase)
    ->RangeMultiplier(4)
    ->Range(128, 8192)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_BackfillSearchWorstCase)
    ->RangeMultiplier(4)
    ->Range(128, 2048)
    ->Complexity(benchmark::oNSquared);
BENCHMARK(BM_SlotSubtraction)->RangeMultiplier(4)->Range(128, 2048);
BENCHMARK(BM_SlotListProbeSubtract)
    ->RangeMultiplier(4)
    ->Range(1024, 131072);
BENCHMARK(BM_SlotListProbeSubtractLinear)
    ->RangeMultiplier(4)
    ->Range(1024, 16384);
BENCHMARK(BM_SlotListProbeMiss)
    ->RangeMultiplier(4)
    ->Range(1024, 131072)
    ->Complexity(benchmark::oLogN);
BENCHMARK(BM_SlotListProbeMissLinear)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_AlpSearchDeadlineBounded)
    ->RangeMultiplier(4)
    ->Range(1024, 65536);
BENCHMARK(BM_AlternativeSearchSweep);
BENCHMARK(BM_AlternativeSearchSerialBaseline)->UseRealTime();
BENCHMARK(BM_AlternativeSearchThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime();
BENCHMARK(BM_SlotFilterRebuild)
    ->RangeMultiplier(4)
    ->Range(128, 8192)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_SlotFilterRebuildDeadline)
    ->RangeMultiplier(4)
    ->Range(1024, 65536);
BENCHMARK(BM_MultiVoDriver)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();
BENCHMARK(BM_VoIterationSteadyState)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({8192, 0})
    ->Args({8192, 1});
BENCHMARK(BM_SnapshotSaveLoad)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_SlotIndexCompaction)->Arg(1)->Arg(32)->Arg(128)->Arg(4096);
BENCHMARK(BM_DpOptimizer)->RangeMultiplier(4)->Range(256, 16384);
BENCHMARK(BM_OnePassBatchScheduler)
    ->RangeMultiplier(4)
    ->Range(128, 8192)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_BicriteriaDp)->RangeMultiplier(2)->Range(64, 256);
