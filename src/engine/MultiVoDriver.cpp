//===-- engine/MultiVoDriver.cpp - Concurrent multi-VO driver -------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/MultiVoDriver.h"

#include "support/StateCodec.h"

using namespace ecosched;

namespace {

std::string tenantSnapshotPath(const std::string &Dir, size_t Index) {
  return Dir + "/tenant_" + std::to_string(Index) + ".snap";
}

} // namespace

size_t MultiVoDriver::addTenant(ComputingDomain Domain,
                                const Metascheduler &Scheduler,
                                VirtualOrganization::Config VoCfg,
                                uint64_t Seed) {
  Tenant T;
  T.Vo = std::make_unique<VirtualOrganization>(std::move(Domain), Scheduler,
                                               VoCfg);
  T.Rng.reseed(Seed);
  Tenants.push_back(std::move(T));
  return Tenants.size() - 1;
}

MultiVoDriver::TenantIteration
MultiVoDriver::stepTenant(size_t I, const ArrivalFn &Arrivals) {
  Tenant &T = Tenants[I];
  TenantIteration Result;
  if (Arrivals) {
    const Batch Arrived = Arrivals(I, T.Iteration, T.Rng);
    for (const Job &J : Arrived)
      T.Vo->submit(J);
    Result.Arrivals = Arrived.size();
  }
  Result.Report = T.Vo->runIteration();
  ++T.Iteration;
  return Result;
}

std::vector<MultiVoDriver::TenantIteration>
MultiVoDriver::runIteration(const ArrivalFn &Arrivals) {
  // Tenants are fully independent (own domain, own RNG stream), so the
  // fan-out is deterministic for any pool size: parallelMap writes
  // tenant I's result to slot I.
  if (Cfg.Pool != nullptr && Cfg.Pool->threadCount() > 1)
    return Cfg.Pool->parallelMap<TenantIteration>(
        Tenants.size(), /*Chunk=*/1,
        [&](size_t I) { return stepTenant(I, Arrivals); });

  std::vector<TenantIteration> Results;
  Results.reserve(Tenants.size());
  for (size_t I = 0; I < Tenants.size(); ++I)
    Results.push_back(stepTenant(I, Arrivals));
  return Results;
}

std::vector<MultiVoDriver::TenantIteration>
MultiVoDriver::run(size_t Iterations, const ArrivalFn &Arrivals) {
  std::vector<TenantIteration> Last(Tenants.size());
  for (size_t Round = 0; Round < Iterations; ++Round)
    Last = runIteration(Arrivals);
  return Last;
}

Money MultiVoDriver::totalIncome() const {
  double Income = 0.0;
  for (const Tenant &T : Tenants)
    Income += T.Vo->totalIncome().value();
  return Money(Income);
}

size_t MultiVoDriver::totalCompleted() const {
  size_t Count = 0;
  for (const Tenant &T : Tenants)
    Count += T.Vo->completed().size();
  return Count;
}

size_t MultiVoDriver::totalDropped() const {
  size_t Count = 0;
  for (const Tenant &T : Tenants)
    Count += T.Vo->dropped().size();
  return Count;
}

SearchStats MultiVoDriver::totalFilterStats() const {
  SearchStats Total;
  for (const Tenant &T : Tenants)
    Total += T.Vo->filterStats();
  return Total;
}

bool MultiVoDriver::saveSnapshots(const std::string &Dir,
                                  std::string *Error) const {
  if (!ensureDirectory(Dir, Error))
    return false;
  for (size_t I = 0; I < Tenants.size(); ++I) {
    const Tenant &T = Tenants[I];
    StateWriter W;
    W.beginSection("tenant");
    W.writeUInt("index", I);
    W.writeUInt("iteration", T.Iteration);
    T.Rng.saveState(W);
    T.Vo->saveSnapshot(W);
    W.endSection("tenant");
    if (!writeStateFile(W.text(), tenantSnapshotPath(Dir, I), Error))
      return false;
  }
  return true;
}

bool MultiVoDriver::loadSnapshots(const std::string &Dir,
                                  std::string *Error) {
  for (size_t I = 0; I < Tenants.size(); ++I) {
    const std::string Path = tenantSnapshotPath(Dir, I);
    std::string Text;
    if (!readStateFile(Path, Text, Error))
      return false;
    StateReader R(Text);
    Tenant &T = Tenants[I];
    uint64_t Index = 0;
    uint64_t Iteration = 0;
    const bool Ok = R.beginSection("tenant") &&
                    R.readUInt("index", Index) &&
                    (Index == I ||
                     (R.fail("tenant: snapshot index does not match the "
                             "registered tenant"),
                      false)) &&
                    R.readUInt("iteration", Iteration) &&
                    T.Rng.loadState(R) && T.Vo->loadSnapshot(R) &&
                    R.endSection("tenant") && R.atEnd();
    if (!Ok) {
      if (Error) {
        *Error = Path + ": " +
                 (!R.ok() ? R.error()
                          : std::string("trailing content after snapshot"));
      }
      return false;
    }
    T.Iteration = static_cast<size_t>(Iteration);
  }
  return true;
}
