file(REMOVE_RECURSE
  "../bench/fig3_alternatives_chart"
  "../bench/fig3_alternatives_chart.pdb"
  "CMakeFiles/fig3_alternatives_chart.dir/fig3_alternatives_chart.cpp.o"
  "CMakeFiles/fig3_alternatives_chart.dir/fig3_alternatives_chart.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_alternatives_chart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
