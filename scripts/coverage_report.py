#!/usr/bin/env python3
"""Aggregate gcov-format counters into a per-layer line-coverage report.

Driven by scripts/coverage.sh after a `coverage` preset build + ctest
run. Walks every .gcda under --build, extracts per-line execution
counts, folds them per source file (a line is covered when any TU
executed it), groups files by layer (src/support, src/sim, src/core,
src/engine), and enforces --floor on each --floor-layer.

Tool selection, in order:
  1. gcovr, when installed (its JSON report already merges TUs);
  2. `gcov --json-format --stdout` (any GCC toolchain; set GCOV=... to
     pin a specific binary, e.g. a versioned gcov matching the compiler).
Exits 2 when neither tool exists: a coverage run that cannot measure
anything must not pass the gate.
"""

import argparse
import collections
import glob
import json
import os
import shutil
import subprocess
import sys


def layer_of(path):
    """Maps a repo-relative source path to its reporting bucket."""
    parts = path.split("/")
    if len(parts) >= 2 and parts[0] == "src":
        return f"src/{parts[1]}"
    return parts[0] if parts else "?"


def normalize(path, source_root):
    """Repo-relative path with '/' separators, or None for files outside
    the repo (system headers, gtest, ...)."""
    absolute = os.path.realpath(
        path if os.path.isabs(path) else os.path.join(source_root, path))
    root = os.path.realpath(source_root) + os.sep
    if not absolute.startswith(root):
        return None
    return absolute[len(root):].replace(os.sep, "/")


def collect_with_gcov(gcov, build_dir, source_root):
    """Returns {file: {line: covered_bool}} via gcov's JSON output."""
    coverage = collections.defaultdict(dict)
    gcda = sorted(glob.glob(os.path.join(build_dir, "**", "*.gcda"),
                            recursive=True))
    if not gcda:
        sys.stderr.write(
            "coverage_report: no .gcda counters under the build dir; "
            "run ctest on an ECOSCHED_COVERAGE build first\n")
        sys.exit(2)
    for counter in gcda:
        # Absolute path: gcov runs with cwd next to the counter (so the
        # .gcno is found), which would break a build-relative path.
        counter = os.path.abspath(counter)
        proc = subprocess.run(
            [gcov, "--json-format", "--stdout", counter],
            cwd=os.path.dirname(counter), capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(f"coverage_report: {gcov} failed on "
                             f"{counter}:\n{proc.stderr}")
            sys.exit(2)
        # One JSON document per line (gcov emits one per .gcno).
        for doc in proc.stdout.splitlines():
            doc = doc.strip()
            if not doc:
                continue
            data = json.loads(doc)
            for entry in data.get("files", []):
                rel = normalize(entry["file"], source_root)
                if rel is None:
                    continue
                lines = coverage[rel]
                for line in entry.get("lines", []):
                    number = line["line_number"]
                    lines[number] = lines.get(number, False) or \
                        line.get("count", 0) > 0
    return coverage


def collect_with_gcovr(gcovr, build_dir, source_root):
    """Returns {file: {line: covered_bool}} via a gcovr JSON report."""
    proc = subprocess.run(
        [gcovr, "--root", source_root, "--json", "--output", "-",
         build_dir],
        capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(f"coverage_report: gcovr failed:\n{proc.stderr}")
        sys.exit(2)
    coverage = collections.defaultdict(dict)
    for entry in json.loads(proc.stdout).get("files", []):
        rel = normalize(entry["file"], source_root)
        if rel is None:
            continue
        lines = coverage[rel]
        for line in entry.get("lines", []):
            number = line["line_number"]
            lines[number] = lines.get(number, False) or \
                line.get("count", 0) > 0
    return coverage


def main():
    parser = argparse.ArgumentParser(
        description="Per-layer line-coverage report over gcov counters.")
    parser.add_argument("--build", required=True,
                        help="build directory holding the .gcda counters")
    parser.add_argument("--source-root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--floor", type=float, default=75.0,
                        help="minimum line coverage percent for each "
                             "--floor-layer (default: 75)")
    parser.add_argument("--floor-layer", action="append", default=[],
                        help="layer the floor applies to (repeatable), "
                             "e.g. src/core")
    args = parser.parse_args()

    gcovr = shutil.which("gcovr")
    if gcovr:
        coverage = collect_with_gcovr(gcovr, args.build, args.source_root)
        tool = "gcovr"
    else:
        gcov = os.environ.get("GCOV") or shutil.which("gcov")
        if not gcov:
            sys.stderr.write(
                "coverage_report: neither gcovr nor gcov found; install "
                "one (or set GCOV=/path/to/gcov) — the coverage gate "
                "must not silently pass\n")
            sys.exit(2)
        coverage = collect_with_gcov(gcov, args.build, args.source_root)
        tool = gcov

    per_layer = collections.defaultdict(lambda: [0, 0])  # [covered, total]
    for path, lines in coverage.items():
        bucket = per_layer[layer_of(path)]
        bucket[0] += sum(1 for covered in lines.values() if covered)
        bucket[1] += len(lines)

    print(f"line coverage by layer (tool: {tool})")
    width = max(len(layer) for layer in per_layer) if per_layer else 8
    failures = []
    total_covered = total_lines = 0
    for layer in sorted(per_layer):
        covered, total = per_layer[layer]
        total_covered += covered
        total_lines += total
        pct = 100.0 * covered / total if total else 0.0
        floored = layer in args.floor_layer
        marker = ""
        if floored and pct < args.floor:
            marker = f"  BELOW FLOOR ({args.floor:.0f}%)"
            failures.append(layer)
        elif floored:
            marker = f"  (floor {args.floor:.0f}%)"
        print(f"  {layer:<{width}}  {covered:>6}/{total:<6}  {pct:6.2f}%"
              f"{marker}")
    if total_lines:
        print(f"  {'total':<{width}}  {total_covered:>6}/{total_lines:<6}  "
              f"{100.0 * total_covered / total_lines:6.2f}%")

    missing = [layer for layer in args.floor_layer if layer not in per_layer]
    if missing:
        sys.stderr.write("coverage_report: no coverage data at all for "
                         f"floored layer(s): {', '.join(missing)}\n")
        return 1
    if failures:
        sys.stderr.write(f"coverage_report: {len(failures)} layer(s) below "
                         f"the {args.floor:.0f}% floor: "
                         f"{', '.join(failures)}\n")
        return 1
    print("coverage_report: floor satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
