//===-- tests/core/BatchOrderingTest.cpp - Ordering policy tests ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/BatchOrdering.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

Job makeJob(int Id, int Nodes, double Volume) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = Nodes;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = 1.0;
  J.Request.MaxUnitPrice = 2.0;
  return J;
}

/// ids: 1 (2 nodes, 100), 2 (5 nodes, 60), 3 (1 node, 150),
///      4 (2 nodes, 40).
Batch makeBatch() {
  return {makeJob(1, 2, 100.0), makeJob(2, 5, 60.0), makeJob(3, 1, 150.0),
          makeJob(4, 2, 40.0)};
}

std::vector<int> idsOf(const Batch &Jobs) {
  std::vector<int> Ids;
  for (const Job &J : Jobs)
    Ids.push_back(J.Id);
  return Ids;
}

} // namespace

TEST(BatchOrderingTest, SubmissionOrderIsIdentity) {
  const Batch Ordered =
      orderBatch(makeBatch(), OrderingPolicyKind::SubmissionOrder);
  EXPECT_EQ(idsOf(Ordered), (std::vector<int>{1, 2, 3, 4}));
}

TEST(BatchOrderingTest, WidestFirst) {
  const Batch Ordered =
      orderBatch(makeBatch(), OrderingPolicyKind::WidestFirst);
  // Node counts: 5, then the 2-node jobs in submission order, then 1.
  EXPECT_EQ(idsOf(Ordered), (std::vector<int>{2, 1, 4, 3}));
}

TEST(BatchOrderingTest, NarrowestFirst) {
  const Batch Ordered =
      orderBatch(makeBatch(), OrderingPolicyKind::NarrowestFirst);
  EXPECT_EQ(idsOf(Ordered), (std::vector<int>{3, 1, 4, 2}));
}

TEST(BatchOrderingTest, LargestWorkFirst) {
  // Work: 200, 300, 150, 80.
  const Batch Ordered =
      orderBatch(makeBatch(), OrderingPolicyKind::LargestWorkFirst);
  EXPECT_EQ(idsOf(Ordered), (std::vector<int>{2, 1, 3, 4}));
}

TEST(BatchOrderingTest, SmallestWorkFirst) {
  const Batch Ordered =
      orderBatch(makeBatch(), OrderingPolicyKind::SmallestWorkFirst);
  EXPECT_EQ(idsOf(Ordered), (std::vector<int>{4, 3, 1, 2}));
}

TEST(BatchOrderingTest, StableOnTies) {
  Batch Tied = {makeJob(7, 2, 50.0), makeJob(8, 2, 50.0),
                makeJob(9, 2, 50.0)};
  for (const OrderingPolicyKind Policy :
       {OrderingPolicyKind::WidestFirst, OrderingPolicyKind::NarrowestFirst,
        OrderingPolicyKind::LargestWorkFirst,
        OrderingPolicyKind::SmallestWorkFirst}) {
    const Batch Ordered = orderBatch(Tied, Policy);
    EXPECT_EQ(idsOf(Ordered), (std::vector<int>{7, 8, 9}))
        << orderingPolicyName(Policy);
  }
}

TEST(BatchOrderingTest, EmptyBatch) {
  EXPECT_TRUE(
      orderBatch({}, OrderingPolicyKind::WidestFirst).empty());
}

TEST(BatchOrderingTest, PolicyNames) {
  EXPECT_EQ(orderingPolicyName(OrderingPolicyKind::SubmissionOrder),
            "submission");
  EXPECT_EQ(orderingPolicyName(OrderingPolicyKind::WidestFirst),
            "widest-first");
  EXPECT_EQ(orderingPolicyName(OrderingPolicyKind::SmallestWorkFirst),
            "smallest-work-first");
}
