//===-- sim/JobGenerator.cpp - Section 5 job batch generator -------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/JobGenerator.h"

#include <cmath>

using namespace ecosched;

Batch JobGenerator::generate(RandomGenerator &Rng, int FirstJobId) const {
  const int JobCount =
      static_cast<int>(Rng.uniformInt(Config.MinJobs, Config.MaxJobs));
  Batch Jobs;
  Jobs.reserve(static_cast<size_t>(JobCount));

  for (int I = 0; I < JobCount; ++I) {
    Job J;
    J.Id = FirstJobId + I;
    J.Request.NodeCount =
        static_cast<int>(Rng.uniformInt(Config.MinNodes, Config.MaxNodes));
    J.Request.Volume = Rng.uniformReal(Config.MinVolume, Config.MaxVolume);
    J.Request.MinPerformance =
        Rng.uniformReal(Config.MinPerformanceLo, Config.MinPerformanceHi);
    J.Request.MaxUnitPrice =
        Config.PriceFactor *
        std::pow(Config.PriceBase, J.Request.MinPerformance);
    J.Request.BudgetFactor = Config.BudgetFactor;
    J.Request.BudgetPolicy = Config.BudgetPolicy;
    Jobs.push_back(J);
  }
  return Jobs;
}
