# Empty compiler generated dependencies file for vo_longrun.
# This may be replaced when dependencies are built.
