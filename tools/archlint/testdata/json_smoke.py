#!/usr/bin/env python3
"""ArchLintJsonSmoke: machine-readable output contract check.

Runs archlint --format=json over the known-bad fplint fixture and
asserts the JSON shape downstream allow-list audits rely on:

 - output parses as a JSON array of objects;
 - every entry carries file/line/rule/message/suppressed with the
   right types;
 - all three fplint rules appear among the unsuppressed findings;
 - the fixture's archlint-allow'd site surfaces with suppressed=true
   (JSON emits everything; only unsuppressed findings gate the exit
   code, which must be 1 here).

Usage: json_smoke.py <archlint-binary> <fixture-root>
"""

import json
import subprocess
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} <archlint-binary> <fixture-root>")
        return 2
    binary, fixture = sys.argv[1], sys.argv[2]

    proc = subprocess.run(
        [binary, "--root", fixture, "--format=json"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1, (
        f"expected exit 1 on the bad fixture, got {proc.returncode}\n"
        f"stderr: {proc.stderr}"
    )

    findings = json.loads(proc.stdout)
    assert isinstance(findings, list) and findings, "expected a non-empty array"

    for entry in findings:
        assert isinstance(entry, dict), f"non-object entry: {entry!r}"
        assert isinstance(entry["file"], str) and entry["file"]
        assert isinstance(entry["line"], int) and entry["line"] > 0
        assert isinstance(entry["rule"], str) and entry["rule"]
        assert isinstance(entry["message"], str) and entry["message"]
        assert isinstance(entry["suppressed"], bool)

    unsuppressed_rules = {e["rule"] for e in findings if not e["suppressed"]}
    for rule in ("fp-raw-compare", "fp-raw-epsilon", "fp-double-api"):
        assert rule in unsuppressed_rules, f"rule {rule} missing from output"

    suppressed = [e for e in findings if e["suppressed"]]
    assert suppressed, "archlint-allow'd finding missing from JSON output"
    assert all(e["rule"] == "fp-raw-compare" for e in suppressed), (
        "fixture only suppresses fp-raw-compare sites"
    )

    print(f"json smoke: {len(findings)} findings, "
          f"{len(suppressed)} suppressed, shape OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
