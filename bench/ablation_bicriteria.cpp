//===-- bench/ablation_bicriteria.cpp - The criteria-vector model ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment for the general case of the economic model
/// (Section 2): the criteria vector <C(s), D(s), T(s), I(s)> with
/// D = B* - C and I = T* - T. On Section 5 workloads, both VO limits
/// are enforced simultaneously and the scalarization weight sweeps the
/// policy spectrum between pure cost and pure time minimization; the
/// bench reports the averaged criteria vector at each weight and the
/// exact Pareto front of one sample instance (optionally as an SVG
/// scatter via --svg).
///
//===----------------------------------------------------------------------===//

#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "core/BicriteriaOptimizer.h"
#include "core/DpOptimizer.h"
#include "core/Limits.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "support/CommandLine.h"
#include "support/Plot.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_bicriteria",
                 "criteria vector <C, D, T, I> under both VO limits");
  const int64_t &Iterations =
      Args.addInt("iterations", 300, "simulated scheduling iterations");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  const std::string &SvgPath = Args.addString(
      "svg", "", "write a sample instance's Pareto front as SVG");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Extension: the general criteria-vector model "
              "(Section 2, model [2])\n");
  std::printf("========================================================="
              "=====\n\n");

  SlotGenerator Slots;
  JobGenerator Jobs;
  AmpSearch Amp;
  DpOptimizer Dp;
  BicriteriaDpOptimizer Bicriteria;

  const double Weights[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  struct WeightStats {
    RunningStats Cost, BudgetSlack, Time, QuotaSlack;
    size_t Feasible = 0;
  };
  WeightStats Stats[5];
  size_t Instances = 0;
  bool SampleWritten = false;

  RandomGenerator Master(static_cast<uint64_t>(Seed));
  for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
    RandomGenerator Rng = Master.fork();
    const SlotList SlotsNow = Slots.generate(Rng);
    const Batch BatchNow = Jobs.generate(Rng);
    const AlternativeSet Alts =
        AlternativeSearch(Amp).run(SlotsNow, BatchNow);
    if (!Alts.allCovered())
      continue;
    const auto Values = toAlternativeValues(Alts);
    const double Quota =
        computeTimeQuota(Values, QuotaPolicyKind::ExactMean);
    const double Budget = computeVoBudget(Values, Duration(Quota), Dp);
    if (Budget < 0.0)
      continue;
    ++Instances;

    BicriteriaProblem P;
    P.PerJob = Values;
    P.Budget = Budget;
    P.TimeQuota = Quota;
    for (int W = 0; W < 5; ++W) {
      P.CostWeight = Weights[W];
      const BicriteriaChoice C = Bicriteria.solve(P);
      if (!C.Feasible)
        continue;
      ++Stats[W].Feasible;
      Stats[W].Cost.add(C.Cost);
      Stats[W].BudgetSlack.add(C.budgetSlack(P));
      Stats[W].Time.add(C.Time);
      Stats[W].QuotaSlack.add(C.quotaSlack(P));
    }

    // Dump the first instance's exact Pareto front (small batches only
    // to keep the enumeration snappy).
    if (!SampleWritten && !SvgPath.empty() && BatchNow.size() <= 4) {
      const auto Front = enumerateParetoFront(P);
      if (Front.size() >= 3) {
        LineChart Chart("Pareto front of one batch: cost vs time "
                        "(both limits active)",
                        "total cost C(s)", "total time T(s)");
        std::vector<std::pair<double, double>> Points;
        for (const ParetoPoint &Point : Front)
          Points.push_back({Point.Cost, Point.Time});
        Chart.addSeries("non-dominated selections", std::move(Points));
        if (Chart.render().write(SvgPath)) {
          std::printf("wrote %s (%zu front points)\n\n", SvgPath.c_str(),
                      Front.size());
          SampleWritten = true;
        }
      }
    }
  }

  std::printf("%zu instances with both limits feasible\n\n", Instances);
  TablePrinter Table;
  Table.addColumn("cost weight");
  Table.addColumn("feasible");
  Table.addColumn("C(s)");
  Table.addColumn("D(s)=B*-C");
  Table.addColumn("T(s)");
  Table.addColumn("I(s)=T*-T");
  for (int W = 0; W < 5; ++W) {
    Table.beginRow();
    Table.addCell(Weights[W], 2);
    Table.addCell(static_cast<long long>(Stats[W].Feasible));
    Table.addCell(Stats[W].Cost.mean(), 1);
    Table.addCell(Stats[W].BudgetSlack.mean(), 1);
    Table.addCell(Stats[W].Time.mean(), 1);
    Table.addCell(Stats[W].QuotaSlack.mean(), 1);
  }
  Table.print(stdout);

  std::printf("\nreading: sliding the weight from time-only (0) to "
              "cost-only (1) converts quota slack I(s) into budget "
              "slack D(s) while every selection honours both limits — "
              "the policy spectrum of the paper's criteria vector.\n");
  return 0;
}
