//===-- tests/engine/JobQueueTest.cpp - VO admission queue tests ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/JobQueue.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

Job makeJob(int Id, double Volume = 100.0) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = 1;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = 1.0;
  J.Request.MaxUnitPrice = 2.0;
  return J;
}

} // namespace

TEST(JobQueueTest, BatchPreservesSubmissionOrder) {
  JobQueue Q;
  Q.submit(makeJob(3));
  Q.submit(makeJob(1));
  Q.submit(makeJob(2));
  const Batch Jobs = Q.batch();
  ASSERT_EQ(Jobs.size(), 3u);
  EXPECT_EQ(Jobs[0].Id, 3);
  EXPECT_EQ(Jobs[1].Id, 1);
  EXPECT_EQ(Jobs[2].Id, 2);
}

TEST(JobQueueTest, ResubmitFrontJumpsTheLine) {
  JobQueue Q;
  Q.submit(makeJob(1));
  Q.submit(makeJob(2));
  Q.resubmitFront(makeJob(9), /*Attempts=*/4);
  ASSERT_EQ(Q.size(), 3u);
  EXPECT_EQ(Q.at(0).Spec.Id, 9);
  EXPECT_EQ(Q.at(0).Attempts, 4);
  EXPECT_EQ(Q.at(1).Spec.Id, 1);
}

TEST(JobQueueTest, RemoveScheduledHandlesUnsortedIndices) {
  JobQueue Q;
  for (int Id = 0; Id < 5; ++Id)
    Q.submit(makeJob(Id));
  // Remove positions 0, 2, 4 in scrambled order; erase must go back to
  // front so earlier indices stay valid.
  Q.removeScheduled({2, 4, 0});
  ASSERT_EQ(Q.size(), 2u);
  EXPECT_EQ(Q.at(0).Spec.Id, 1);
  EXPECT_EQ(Q.at(1).Spec.Id, 3);
}

TEST(JobQueueTest, ChargeAttemptIncrementsEveryQueuedJob) {
  JobQueue Q; // MaxAttempts = 0: never drops.
  Q.submit(makeJob(1));
  Q.submit(makeJob(2));
  EXPECT_EQ(Q.chargeAttempt(), 0u);
  EXPECT_EQ(Q.chargeAttempt(), 0u);
  EXPECT_EQ(Q.at(0).Attempts, 2);
  EXPECT_EQ(Q.at(1).Attempts, 2);
  EXPECT_TRUE(Q.dropped().empty());
}

TEST(JobQueueTest, MaxAttemptsDropsInQueueOrder) {
  JobQueue Q(/*MaxAttempts=*/2);
  Q.submit(makeJob(7));
  Q.submit(makeJob(8));
  EXPECT_EQ(Q.chargeAttempt(), 0u); // Attempts 1 < 2.
  EXPECT_EQ(Q.chargeAttempt(), 2u); // Attempts 2 >= 2: both dropped.
  EXPECT_TRUE(Q.empty());
  ASSERT_EQ(Q.dropped().size(), 2u);
  EXPECT_EQ(Q.dropped()[0], 7);
  EXPECT_EQ(Q.dropped()[1], 8);
}

TEST(JobQueueTest, ResubmittedAttemptsCountTowardMaxAttempts) {
  JobQueue Q(/*MaxAttempts=*/3);
  Q.resubmitFront(makeJob(1), /*Attempts=*/2); // One strike left.
  EXPECT_EQ(Q.chargeAttempt(), 1u);
  EXPECT_TRUE(Q.empty());
}

TEST(JobQueueTest, SetBudgetFactorTouchesEveryQueuedJob) {
  JobQueue Q;
  Q.submit(makeJob(1));
  Q.submit(makeJob(2));
  Q.setBudgetFactor(0.75);
  EXPECT_DOUBLE_EQ(Q.at(0).Spec.Request.BudgetFactor, 0.75);
  EXPECT_DOUBLE_EQ(Q.at(1).Spec.Request.BudgetFactor, 0.75);
  const Batch Jobs = Q.batch();
  EXPECT_DOUBLE_EQ(Jobs[0].Request.BudgetFactor, 0.75);
}

TEST(JobQueueTest, CancelRemovesMatchingEntries) {
  JobQueue Q;
  Q.submit(makeJob(1));
  Q.submit(makeJob(2));
  EXPECT_TRUE(Q.cancel(1));
  EXPECT_EQ(Q.size(), 1u);
  EXPECT_EQ(Q.at(0).Spec.Id, 2);
  EXPECT_FALSE(Q.cancel(1)); // Already gone.
}
