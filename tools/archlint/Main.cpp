//===-- tools/archlint/Main.cpp - archlint CLI driver ---------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// Walks src/ tests/ bench/ examples/ under --root, feeds every C++ file
// (plus the tests/ CMakeLists.txt registrations) to the rule engine, and
// exits non-zero on any finding. `--self-test` runs the built-in
// synthetic rule suite instead; the negative ctest fixture under
// testdata/ proves the binary really fails on a layering violation.
//
//===----------------------------------------------------------------------===//

#include "ArchLint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace ecosched::archlint;
namespace fs = std::filesystem;

namespace {

const char *const Usage =
    "usage: archlint [--root DIR] [--format=text|json] [--self-test]\n"
    "\n"
    "Lints the EcoSched source tree (src/ tests/ bench/ examples/ under\n"
    "--root, default '.') against the project architecture rules; see\n"
    "docs/STATIC_ANALYSIS.md for the rule catalog. Exits 1 on\n"
    "unsuppressed findings. --format=json emits every finding (including\n"
    "suppressed ones, flagged) as a JSON array on stdout for machine\n"
    "consumers. --self-test runs the built-in synthetic rule suite\n"
    "instead.\n";

/// Reads \p Path into a SourceFile with \p StorePath as its reported
/// (root-relative) path. \returns false on I/O failure.
bool readSource(const fs::path &Path, const std::string &StorePath,
                std::vector<SourceFile> &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  SourceFile F;
  F.Path = StorePath;
  std::string Line;
  while (std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    F.Lines.push_back(Line);
  }
  Out.push_back(std::move(F));
  return true;
}

/// Collects the lintable files under \p Root: C++ sources in the four
/// scanned trees plus CMakeLists.txt under tests/ (for the
/// test-registration rule). Paths are stored '/'-separated relative to
/// the root so rule decisions and output are machine-independent.
bool collectFiles(const fs::path &Root, std::vector<SourceFile> &Out) {
  const char *const ScannedDirs[] = {"src", "tests", "bench", "examples"};
  bool AnyDir = false;
  for (const char *Dir : ScannedDirs) {
    const fs::path Top = Root / Dir;
    if (!fs::is_directory(Top))
      continue;
    AnyDir = true;
    for (const auto &Entry : fs::recursive_directory_iterator(Top)) {
      if (!Entry.is_regular_file())
        continue;
      const std::string Ext = Entry.path().extension().string();
      const std::string Name = Entry.path().filename().string();
      const bool Lintable = Ext == ".h" || Ext == ".cpp" ||
                            (std::string(Dir) == "tests" &&
                             Name == "CMakeLists.txt");
      if (!Lintable)
        continue;
      const std::string Relative =
          fs::relative(Entry.path(), Root).generic_string();
      if (!readSource(Entry.path(), Relative, Out)) {
        std::cerr << "archlint: cannot read " << Entry.path() << '\n';
        return false;
      }
    }
  }
  if (!AnyDir) {
    std::cerr << "archlint: no scannable directory (src/ tests/ bench/ "
                 "examples/) under '"
              << Root.string() << "'\n";
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Root = ".";
  bool SelfTest = false;
  bool Json = false;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--root" && I + 1 < Argc) {
      Root = Argv[++I];
    } else if (Arg == "--format=text") {
      Json = false;
    } else if (Arg == "--format=json") {
      Json = true;
    } else if (Arg == "--self-test") {
      SelfTest = true;
    } else if (Arg == "-h" || Arg == "--help") {
      std::cout << Usage;
      return 0;
    } else {
      std::cerr << "archlint: unknown argument '" << Arg << "'\n" << Usage;
      return 2;
    }
  }

  if (SelfTest) {
    const int Failures = runSelfTest();
    if (Failures != 0) {
      std::cerr << "archlint --self-test: " << Failures << " case(s) FAILED\n";
      return 1;
    }
    std::cout << "archlint --self-test: all cases passed\n";
    return 0;
  }

  std::vector<SourceFile> Files;
  if (!collectFiles(Root, Files))
    return 2;
  // Deterministic file order regardless of directory iteration order.
  std::sort(Files.begin(), Files.end(),
            [](const SourceFile &A, const SourceFile &B) {
              return A.Path < B.Path;
            });

  const std::vector<Finding> Findings = lintFiles(Files);
  size_t Unsuppressed = 0;
  for (const Finding &F : Findings)
    if (!F.Suppressed)
      ++Unsuppressed;
  if (Json) {
    // Machine consumers get every finding; suppressed sites carry the
    // flag so allow-list audits need no second pass.
    std::cout << formatFindingsJson(Findings);
    return Unsuppressed == 0 ? 0 : 1;
  }
  for (const Finding &F : Findings)
    if (!F.Suppressed)
      std::cerr << formatFinding(F) << '\n';
  if (Unsuppressed != 0) {
    std::cerr << "archlint: " << Unsuppressed << " finding(s) in "
              << Files.size() << " files\n";
    return 1;
  }
  std::cout << "archlint: clean (" << Files.size() << " files)\n";
  return 0;
}
