//===-- fuzz/StandaloneDriver.cpp - Corpus/replay driver without clang ----===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// main() for toolchains without libFuzzer (this container ships GCC
// only): replays every committed corpus input through
// LLVMFuzzerTestOneInput, then executes a bounded number of
// deterministic generated runs — fresh SplitMix64 byte strings plus
// byte-level mutations of corpus entries. The flag surface mirrors the
// libFuzzer flags ci.sh uses (`-runs=N`, `-seed=N`, `-max_len=N`,
// positional corpus dirs/files), so the same ci.sh stage drives either
// binary; unknown -flags are ignored with a notice, as libFuzzer does.
//
// The driver is deliberately deterministic (fixed default seed, no
// wall-clock anywhere) so a CI failure reproduces bit-exactly.
//
//===----------------------------------------------------------------------===//

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size);

namespace {

namespace fs = std::filesystem;

/// SplitMix64: tiny, seedable, and plenty for byte-string generation.
struct SplitMix64 {
  uint64_t State;
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }
};

bool readBytes(const fs::path &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

void runOne(const std::vector<uint8_t> &Input) {
  // Null data pointer for the empty input mirrors libFuzzer's contract.
  LLVMFuzzerTestOneInput(Input.empty() ? nullptr : Input.data(),
                         Input.size());
}

} // namespace

int main(int Argc, char **Argv) {
  long Runs = 0;
  uint64_t Seed = 0xEC05C4EDULL; // Fixed default: reproducible CI runs.
  size_t MaxLen = 512;
  std::vector<fs::path> CorpusPaths;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg.rfind("-runs=", 0) == 0) {
      Runs = std::strtol(Arg.c_str() + 6, nullptr, 10);
    } else if (Arg.rfind("-seed=", 0) == 0) {
      Seed = std::strtoull(Arg.c_str() + 6, nullptr, 10);
    } else if (Arg.rfind("-max_len=", 0) == 0) {
      MaxLen = std::strtoul(Arg.c_str() + 9, nullptr, 10);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "standalone fuzz driver: ignoring libFuzzer flag %s\n",
                   Arg.c_str());
    } else {
      CorpusPaths.emplace_back(Arg);
    }
  }

  // Phase 1: replay the committed corpus.
  std::vector<std::vector<uint8_t>> Corpus;
  for (const fs::path &Path : CorpusPaths) {
    std::vector<fs::path> Files;
    if (fs::is_directory(Path)) {
      for (const auto &Entry : fs::recursive_directory_iterator(Path))
        if (Entry.is_regular_file())
          Files.push_back(Entry.path());
    } else {
      Files.push_back(Path);
    }
    for (const fs::path &File : Files) {
      std::vector<uint8_t> Bytes;
      if (!readBytes(File, Bytes)) {
        std::fprintf(stderr, "standalone fuzz driver: cannot read %s\n",
                     File.string().c_str());
        return 2;
      }
      Corpus.push_back(std::move(Bytes));
    }
  }
  for (const auto &Input : Corpus)
    runOne(Input);

  // Phase 2: bounded deterministic generation. Alternate fresh random
  // byte strings with mutations of corpus entries so the generated runs
  // explore both far-field inputs and the corpus neighborhood.
  SplitMix64 Rng(Seed);
  for (long R = 0; R < Runs; ++R) {
    std::vector<uint8_t> Input;
    if (!Corpus.empty() && (R % 2) == 1) {
      Input = Corpus[Rng.next() % Corpus.size()];
      const size_t Mutations = 1 + Rng.next() % 8;
      for (size_t M = 0; M < Mutations && !Input.empty(); ++M) {
        switch (Rng.next() % 3) {
        case 0: // Flip a byte.
          Input[Rng.next() % Input.size()] =
              static_cast<uint8_t>(Rng.next());
          break;
        case 1: // Truncate.
          Input.resize(Rng.next() % (Input.size() + 1));
          break;
        default: // Append a byte.
          if (Input.size() < MaxLen)
            Input.push_back(static_cast<uint8_t>(Rng.next()));
          break;
        }
      }
    } else {
      Input.resize(Rng.next() % (MaxLen + 1));
      for (uint8_t &B : Input)
        B = static_cast<uint8_t>(Rng.next());
    }
    runOne(Input);
  }

  std::printf("standalone fuzz driver: %zu corpus input(s) + %ld generated "
              "run(s), no failures\n",
              Corpus.size(), Runs);
  return 0;
}
