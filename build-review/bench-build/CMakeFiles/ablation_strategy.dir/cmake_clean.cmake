file(REMOVE_RECURSE
  "../bench/ablation_strategy"
  "../bench/ablation_strategy.pdb"
  "CMakeFiles/ablation_strategy.dir/ablation_strategy.cpp.o"
  "CMakeFiles/ablation_strategy.dir/ablation_strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
