//===-- engine/JobQueue.cpp - VO admission queue --------------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/JobQueue.h"

#include "sim/TraceIO.h"
#include "support/Check.h"
#include "support/StateCodec.h"

#include <algorithm>
#include <functional>

using namespace ecosched;

Batch JobQueue::batch() const {
  Batch Jobs;
  Jobs.reserve(Queue.size());
  for (const PendingJob &P : Queue)
    Jobs.push_back(P.Spec);
  return Jobs;
}

void JobQueue::removeScheduled(const std::vector<size_t> &BatchIndices) {
  // Erase back to front so earlier indices stay valid.
  std::vector<size_t> Sorted = BatchIndices;
  std::sort(Sorted.begin(), Sorted.end(), std::greater<size_t>());
  for (size_t Index : Sorted) {
    ECOSCHED_CHECK(Index < Queue.size(),
                   "scheduled batch index {} out of range for a queue of "
                   "{} jobs",
                   Index, Queue.size());
    Queue.erase(Queue.begin() + static_cast<long>(Index));
  }
}

size_t JobQueue::chargeAttempt() {
  for (PendingJob &P : Queue)
    ++P.Attempts;
  if (MaxAttempts <= 0)
    return 0;
  size_t Dropped = 0;
  for (const PendingJob &P : Queue)
    if (P.Attempts >= MaxAttempts) {
      DroppedIds.push_back(P.Spec.Id);
      ++Dropped;
    }
  std::erase_if(Queue, [this](const PendingJob &P) {
    return P.Attempts >= MaxAttempts;
  });
  return Dropped;
}

void JobQueue::setBudgetFactor(double Rho) {
  ECOSCHED_CHECK(Rho > 0.0, "budget factor must be positive, got {}", Rho);
  for (PendingJob &P : Queue)
    P.Spec.Request.BudgetFactor = Rho;
}

bool JobQueue::cancel(int JobId) {
  return std::erase_if(Queue, [JobId](const PendingJob &P) {
           return P.Spec.Id == JobId;
         }) > 0;
}

void JobQueue::saveState(StateWriter &W) const {
  W.beginSection("queue");
  W.writeInt("max-attempts", MaxAttempts);
  W.writeUInt("pending", Queue.size());
  for (const PendingJob &P : Queue) {
    saveJobState(W, P.Spec);
    W.writeInt("attempts", P.Attempts);
  }
  W.writeUInt("dropped", DroppedIds.size());
  for (const int Id : DroppedIds)
    W.writeInt("dropped-id", Id);
  W.endSection("queue");
}

bool JobQueue::loadState(StateReader &R) {
  int64_t Max = 0;
  uint64_t PendingCount = 0;
  if (!R.beginSection("queue") || !R.readInt("max-attempts", Max) ||
      !R.readUInt("pending", PendingCount))
    return false;
  if (Max < std::numeric_limits<int>::min() ||
      Max > std::numeric_limits<int>::max()) {
    R.fail("queue: max-attempts out of range");
    return false;
  }
  std::deque<PendingJob> Pending;
  for (uint64_t I = 0; I < PendingCount; ++I) {
    PendingJob P;
    if (!loadJobState(R, P.Spec))
      return false;
    int64_t Attempts = 0;
    if (!R.readInt("attempts", Attempts))
      return false;
    if (Attempts < 0 || Attempts > std::numeric_limits<int>::max()) {
      R.fail("queue: attempt counter out of range");
      return false;
    }
    P.Attempts = static_cast<int>(Attempts);
    Pending.push_back(std::move(P));
  }
  uint64_t DroppedCount = 0;
  if (!R.readUInt("dropped", DroppedCount))
    return false;
  std::vector<int> Dropped;
  for (uint64_t I = 0; I < DroppedCount; ++I) {
    int64_t Id = 0;
    if (!R.readInt("dropped-id", Id))
      return false;
    if (Id < std::numeric_limits<int>::min() ||
        Id > std::numeric_limits<int>::max()) {
      R.fail("queue: dropped job id out of range");
      return false;
    }
    Dropped.push_back(static_cast<int>(Id));
  }
  if (!R.endSection("queue"))
    return false;
  MaxAttempts = static_cast<int>(Max);
  Queue = std::move(Pending);
  DroppedIds = std::move(Dropped);
  return true;
}
