# Empty dependencies file for tab_alternatives_stats.
# This may be replaced when dependencies are built.
