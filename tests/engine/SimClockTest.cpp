//===-- tests/engine/SimClockTest.cpp - Iteration cadence tests -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/SimClock.h"

#include <gtest/gtest.h>

using namespace ecosched;

TEST(SimClockTest, StartsAtZero) {
  SimClock Clock(Duration(200.0), Duration(800.0));
  EXPECT_DOUBLE_EQ(Clock.now().value(), 0.0);
  EXPECT_DOUBLE_EQ(Clock.period().value(), 200.0);
  EXPECT_DOUBLE_EQ(Clock.horizonLength().value(), 800.0);
  EXPECT_DOUBLE_EQ(Clock.horizonEnd().value(), 800.0);
  EXPECT_EQ(Clock.iteration(), 0u);
}

TEST(SimClockTest, AdvanceAccumulatesPeriodByPeriod) {
  SimClock Clock(Duration(0.1), Duration(500.0));
  for (int I = 0; I < 10; ++I)
    Clock.advance();
  EXPECT_EQ(Clock.iteration(), 10u);
  // The clock must match the historical Clock += Period accumulation
  // (NOT 10 * 0.1, which rounds differently): bitwise preservation of
  // the monolithic VO loop depends on it.
  double Expected = 0.0;
  for (int I = 0; I < 10; ++I)
    Expected += 0.1;
  EXPECT_EQ(Clock.now().value(), Expected);
}

TEST(SimClockTest, HorizonTracksClock) {
  SimClock Clock(Duration(50.0), Duration(600.0));
  Clock.advance();
  Clock.advance();
  EXPECT_DOUBLE_EQ(Clock.now().value(), 100.0);
  EXPECT_DOUBLE_EQ(Clock.horizonEnd().value(), 700.0);
}
