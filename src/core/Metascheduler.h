//===-- core/Metascheduler.h - Two-phase batch scheduling ----------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metascheduler ties the two phases together (Sections 1-2): it
/// takes the ordered slot list published by the resource domains and a
/// priority-ordered batch, collects alternatives (phase 1), derives the
/// VO limits T*/B*, selects the efficient combination (phase 2), and
/// reports which jobs are scheduled and which are postponed to the next
/// iteration.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_METASCHEDULER_H
#define ECOSCHED_CORE_METASCHEDULER_H

#include "core/AlternativeSearch.h"
#include "core/Limits.h"
#include "core/Optimizer.h"

namespace ecosched {

/// Which single-criterion task the iteration optimizes (Section 2).
enum class OptimizationTaskKind {
  /// min T(s) subject to C(s) <= B*.
  MinimizeTime,
  /// min C(s) subject to T(s) <= T*.
  MinimizeCost,
};

/// One scheduled job of an iteration.
struct ScheduledJob {
  int JobId = -1;
  /// Index of the job in the batch.
  size_t BatchIndex = 0;
  /// Index of the chosen alternative within the job's alternatives.
  size_t AlternativeIndex = 0;
  /// The committed window.
  Window W;
};

/// Outcome of one scheduling iteration.
struct IterationOutcome {
  /// Phase-1 result: every alternative found per job.
  AlternativeSet Alternatives;
  /// The quota T* (formula (2)) computed from the alternatives.
  double TimeQuota = 0.0;
  /// The budget B* (formula (3)); negative when T* admits no
  /// combination.
  double VoBudget = -1.0;
  /// Phase-2 selection; infeasible when limits cannot be met or some
  /// job has no alternative.
  CombinationChoice Choice;
  /// Jobs scheduled this iteration (empty when Choice is infeasible).
  std::vector<ScheduledJob> Scheduled;
  /// Ids of jobs postponed to the next iteration.
  std::vector<int> Postponed;
  /// Search work counters of phase 1.
  SearchStats Stats;
};

/// The VO metascheduler.
class Metascheduler {
public:
  struct Config {
    OptimizationTaskKind Task = OptimizationTaskKind::MinimizeTime;
    /// Production default avoids the floored-quota infeasibility
    /// artifact (see QuotaPolicyKind); the Section 5 experiment harness
    /// uses the paper-literal floored policy instead.
    QuotaPolicyKind Quota = QuotaPolicyKind::ExactMean;
    AlternativeSearch::Config Search;
    /// When a batch is only partially coverable, schedule the covered
    /// jobs anyway (true) or postpone the whole batch (false). The
    /// paper's experiments require full coverage; the VO loop uses
    /// partial scheduling to keep making progress.
    bool AllowPartialBatch = true;
  };

  /// \p SearchAlgo and \p Optimizer must outlive the scheduler.
  Metascheduler(const SlotSearchAlgorithm &SearchAlgo,
                const CombinationOptimizer &Optimizer)
      : SearchAlgo(SearchAlgo), Optimizer(Optimizer) {}
  Metascheduler(const SlotSearchAlgorithm &SearchAlgo,
                const CombinationOptimizer &Optimizer, Config Cfg)
      : SearchAlgo(SearchAlgo), Optimizer(Optimizer), Cfg(Cfg) {}

  /// Runs one full scheduling iteration of \p Jobs over \p List.
  /// \param Reuse optional persistent filter synced with exactly
  /// \p List and \p Jobs, forwarded to phase 1's AlternativeSearch (see
  /// AlternativeSearch::run). The scheduler itself stays stateless —
  /// drivers share one scheduler across many VOs, so cross-iteration
  /// filter state is owned by the caller and passed per call; the
  /// outcome is bitwise-identical with or without it.
  IterationOutcome runIteration(const SlotList &List, const Batch &Jobs,
                                PersistentSlotFilter *Reuse = nullptr) const;

  const Config &config() const { return Cfg; }

  /// The phase-1 search algorithm; engine owners of persistent filter
  /// state bind their PersistentSlotFilter to it.
  const SlotSearchAlgorithm &searchAlgo() const { return SearchAlgo; }

private:
  const SlotSearchAlgorithm &SearchAlgo;
  const CombinationOptimizer &Optimizer;
  Config Cfg = {};
};

} // namespace ecosched

#endif // ECOSCHED_CORE_METASCHEDULER_H
