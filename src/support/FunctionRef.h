//===-- support/FunctionRef.h - Non-owning callable reference ------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A non-owning, non-allocating reference to a callable, in the style
/// of LLVM's function_ref: two words (an opaque pointer to the callable
/// plus a trampoline), trivially copyable, and valid only while the
/// referenced callable is alive. Unlike std::function it never
/// heap-allocates and never copies the captured state, which is what
/// callback parameters on hot paths need — the canonical user is
/// SlotList::subtractExact's remainder filter, invoked once per member
/// span of every committed window.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_FUNCTIONREF_H
#define ECOSCHED_SUPPORT_FUNCTIONREF_H

#include <cstdint>
#include <type_traits>
#include <utility>

namespace ecosched {

template <typename Fn> class FunctionRef;

template <typename Ret, typename... Params>
class FunctionRef<Ret(Params...)> {
public:
  /// Binds to any callable invocable as Ret(Params...). The referenced
  /// callable must outlive every call through this reference; binding a
  /// temporary lambda at a call site is fine (it lives until the end of
  /// the full expression), storing the FunctionRef beyond that is not.
  template <typename Callable,
            std::enable_if_t<!std::is_same_v<std::remove_cvref_t<Callable>,
                                             FunctionRef>,
                             int> = 0,
            std::enable_if_t<
                std::is_invocable_r_v<Ret, Callable &, Params...>, int> = 0>
  FunctionRef(Callable &&C) // NOLINT(google-explicit-constructor)
      : Callback(callbackFn<std::remove_reference_t<Callable>>),
        Target(reinterpret_cast<intptr_t>(&C)) {}

  Ret operator()(Params... Ps) const {
    return Callback(Target, std::forward<Params>(Ps)...);
  }

private:
  template <typename Callable>
  static Ret callbackFn(intptr_t T, Params... Ps) {
    return (*reinterpret_cast<Callable *>(T))(std::forward<Params>(Ps)...);
  }

  Ret (*Callback)(intptr_t, Params...) = nullptr;
  intptr_t Target = 0;
};

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_FUNCTIONREF_H
