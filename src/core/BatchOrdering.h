//===-- core/BatchOrdering.h - Batch priority policies -------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Priority policies for the batch. The paper takes the batch order as
/// given (Section 4: "we assume that Job 1 has the highest priority")
/// but the alternative search serves jobs in that order and early jobs
/// see more vacancy, so the ordering is a real scheduling lever. This
/// module provides the classic orderings; `bench/ablation_ordering`
/// measures their effect on coverage and batch quality.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_BATCHORDERING_H
#define ECOSCHED_CORE_BATCHORDERING_H

#include "sim/Job.h"

#include <string_view>

namespace ecosched {

/// How the batch is ordered before the alternative search.
enum class OrderingPolicyKind {
  /// Keep the submission order (the paper's assumption).
  SubmissionOrder,
  /// Widest jobs first (most nodes requested): hard-to-place jobs see
  /// the full vacancy.
  WidestFirst,
  /// Narrowest first: cheap wins early, wide jobs risk starvation.
  NarrowestFirst,
  /// Largest total work first (node count x volume).
  LargestWorkFirst,
  /// Smallest total work first (shortest-job-first analogue).
  SmallestWorkFirst,
};

/// Human-readable policy name ("widest-first", ...).
std::string_view orderingPolicyName(OrderingPolicyKind Policy);

/// Returns \p Jobs reordered by \p Policy. Orderings are stable, so
/// equal-key jobs keep their submission order.
Batch orderBatch(const Batch &Jobs, OrderingPolicyKind Policy);

} // namespace ecosched

#endif // ECOSCHED_CORE_BATCHORDERING_H
