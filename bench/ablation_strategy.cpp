//===-- bench/ablation_strategy.cpp - Safety strategy dependability -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment (Section 7 / refs [13,14]): multi-version
/// safety strategies. On Section 5 workloads, every scheduled job
/// reserves up to K disjoint execution versions; launches fail with a
/// per-node probability p. Reported per (K, p): completion rate,
/// versions consumed, and the reserved-capacity overhead — the
/// dependability-vs-capacity trade the strategy concept is about.
///
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "core/Strategy.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_strategy",
                 "multi-version safety strategies under launch failures");
  const int64_t &Iterations =
      Args.addInt("iterations", 200, "scheduling iterations per cell");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Extension: safety scheduling strategies (Section 7, refs "
              "[13,14])\n");
  std::printf("==========================================================="
              "==\n\n");

  TablePrinter Table;
  Table.addColumn("versions K");
  Table.addColumn("node p(fail)");
  Table.addColumn("completion %");
  Table.addColumn("avg versions used");
  Table.addColumn("reserved/primary time");

  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  SlotGenerator Slots;
  JobGenerator Jobs;

  for (const size_t MaxVersions : {1u, 2u, 3u, 5u}) {
    for (const double FailureProbability : {0.05, 0.15, 0.30}) {
      RandomGenerator Master(static_cast<uint64_t>(Seed));
      size_t JobsTotal = 0, CompletedTotal = 0;
      RunningStats VersionsUsed;
      double Reserved = 0.0, Primary = 0.0;

      for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
        RandomGenerator Rng = Master.fork();
        const SlotList SlotsNow = Slots.generate(Rng);
        const Batch BatchNow = Jobs.generate(Rng);
        const IterationOutcome Outcome =
            Scheduler.runIteration(SlotsNow, BatchNow);
        if (Outcome.Scheduled.empty())
          continue;

        StrategyConfig Cfg;
        Cfg.MaxVersions = MaxVersions;
        const auto Strategies = buildStrategies(Outcome, Cfg);
        for (const JobStrategy &S : Strategies) {
          Reserved += S.reservedNodeTime().value();
          for (const WindowSlot &M : S.Versions[0])
            Primary += M.Runtime;
        }

        const StrategyExecutionReport Report =
            executeStrategies(Strategies, Rng, FailureProbability);
        JobsTotal += Report.Jobs;
        CompletedTotal += Report.Completed;
        VersionsUsed.merge(Report.VersionsUsed);
      }

      Table.beginRow();
      Table.addCell(static_cast<long long>(MaxVersions));
      Table.addCell(FailureProbability, 2);
      Table.addCell(JobsTotal ? 100.0 * CompletedTotal / JobsTotal : 0.0,
                    1);
      Table.addCell(VersionsUsed.mean(), 2);
      Table.addCell(Primary > 0.0 ? Reserved / Primary : 0.0, 2);
    }
  }
  Table.print(stdout);

  std::printf("\nreading: a single version loses jobs in proportion to "
              "the window failure probability; reserving 2-5 disjoint "
              "versions recovers most losses at the cost of withholding "
              "proportionally more processor time from other use — the "
              "strategy trade-off of refs [13,14].\n");
  return 0;
}
