//===-- support/StateCodec.cpp - Versioned engine-state codec -------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/StateCodec.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>

using namespace ecosched;

namespace {

const char *const HeaderMagic = "ecosched-snapshot";

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

/// Appends printf-formatted text to \p Out (same helper as TraceIO).
template <typename... Ts>
void appendFormat(std::string &Out, const char *Fmt, Ts... Values) {
  char Buffer[256];
  const int Count = std::snprintf(Buffer, sizeof(Buffer), Fmt, Values...);
  if (Count > 0)
    Out.append(Buffer, static_cast<size_t>(Count));
}

/// Full-consumption strtoll/strtoull/strtod wrappers: the whole token
/// must parse, so "12x" or "" are malformed rather than truncated.
bool parseInt64(const std::string &Token, int64_t &Value) {
  if (Token.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  const long long V = std::strtoll(Token.c_str(), &End, 10);
  if (errno != 0 || End != Token.c_str() + Token.size())
    return false;
  Value = static_cast<int64_t>(V);
  return true;
}

bool parseUInt64(const std::string &Token, uint64_t &Value) {
  // strtoull accepts a leading '-' (wrapping); forbid it explicitly so
  // counts can never alias huge values.
  if (Token.empty() || Token[0] == '-' || Token[0] == '+')
    return false;
  errno = 0;
  char *End = nullptr;
  const unsigned long long V = std::strtoull(Token.c_str(), &End, 10);
  if (errno != 0 || End != Token.c_str() + Token.size())
    return false;
  Value = static_cast<uint64_t>(V);
  return true;
}

bool parseDouble(const std::string &Token, double &Value) {
  if (Token.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  const double V = std::strtod(Token.c_str(), &End);
  if (End != Token.c_str() + Token.size())
    return false;
  if (std::isnan(V))
    return false;
  Value = V;
  return true;
}

/// RAII FILE handle (same shape as TraceIO's).
struct FileHandle {
  std::FILE *F = nullptr;
  FileHandle(const char *Path, const char *Mode)
      : F(std::fopen(Path, Mode)) {}
  ~FileHandle() {
    if (F)
      std::fclose(F);
  }
  FileHandle(const FileHandle &) = delete;
  FileHandle &operator=(const FileHandle &) = delete;
};

} // namespace

//===----------------------------------------------------------------------===//
// StateWriter
//===----------------------------------------------------------------------===//

StateWriter::StateWriter() {
  appendFormat(Out, "%s v%d\n", HeaderMagic, StateFormatVersion);
}

void StateWriter::beginSection(const char *Name) {
  appendFormat(Out, "section %s\n", Name);
}

void StateWriter::endSection(const char *Name) {
  appendFormat(Out, "end %s\n", Name);
}

void StateWriter::writeInt(const char *Key, int64_t Value) {
  appendFormat(Out, "i %s %lld\n", Key, static_cast<long long>(Value));
}

void StateWriter::writeUInt(const char *Key, uint64_t Value) {
  appendFormat(Out, "u %s %llu\n", Key,
               static_cast<unsigned long long>(Value));
}

void StateWriter::writeBool(const char *Key, bool Value) {
  appendFormat(Out, "b %s %d\n", Key, Value ? 1 : 0);
}

void StateWriter::writeDouble(const char *Key, double Value) {
  appendFormat(Out, "d %s %.17g\n", Key, Value);
}

void StateWriter::writeString(const char *Key, const std::string &Value) {
  appendFormat(Out, "s %s %zu ", Key, Value.size());
  Out += Value;
  Out += '\n';
}

void StateWriter::writeBlob(const char *Key, const std::string &Value) {
  appendFormat(Out, "blob %s %zu\n", Key, Value.size());
  Out += Value;
  Out += '\n';
}

//===----------------------------------------------------------------------===//
// StateReader
//===----------------------------------------------------------------------===//

StateReader::StateReader(const std::string &Text) : Text(Text) {
  std::string Magic, Version;
  skipInterRecord();
  if (!readToken(Magic) || Magic != HeaderMagic) {
    fail("missing 'ecosched-snapshot' header");
    return;
  }
  if (!readToken(Version) || !finishLine()) {
    fail("malformed snapshot header");
    return;
  }
  const std::string Expected = "v" + std::to_string(StateFormatVersion);
  if (Version != Expected)
    fail("unsupported snapshot version '" + Version + "' (this build reads " +
         Expected + ")");
}

size_t StateReader::lineNumber() const {
  size_t Line = 1;
  for (size_t I = 0; I < Pos && I < Text.size(); ++I)
    if (Text[I] == '\n')
      ++Line;
  return Line;
}

void StateReader::fail(const std::string &Message) {
  if (ErrorText.empty())
    ErrorText =
        "snapshot line " + std::to_string(lineNumber()) + ": " + Message;
}

void StateReader::skipInterRecord() {
  while (Pos < Text.size()) {
    const char C = Text[Pos];
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
    } else if (C == '#') {
      while (Pos < Text.size() && Text[Pos] != '\n')
        ++Pos;
    } else {
      return;
    }
  }
}

bool StateReader::readToken(std::string &Token) {
  while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t'))
    ++Pos;
  const size_t Begin = Pos;
  while (Pos < Text.size() && Text[Pos] != ' ' && Text[Pos] != '\t' &&
         Text[Pos] != '\r' && Text[Pos] != '\n')
    ++Pos;
  Token.assign(Text, Begin, Pos - Begin);
  return !Token.empty();
}

bool StateReader::finishLine() {
  while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                               Text[Pos] == '\r'))
    ++Pos;
  // The writer terminates every record with '\n', so a record that runs
  // into end-of-text is a truncated stream, not a complete one.
  if (Pos == Text.size() || Text[Pos] != '\n')
    return false;
  ++Pos;
  return true;
}

bool StateReader::expectRecord(const char *Kind, const char *Key) {
  if (!ok())
    return false;
  skipInterRecord();
  std::string GotKind, GotKey;
  if (!readToken(GotKind) || !readToken(GotKey)) {
    fail(std::string("expected '") + Kind + " " + Key +
         "', found end of snapshot");
    return false;
  }
  if (GotKind != Kind || GotKey != Key) {
    fail(std::string("expected '") + Kind + " " + Key + "', found '" +
         GotKind + " " + GotKey + "'");
    return false;
  }
  return true;
}

bool StateReader::beginSection(const char *Name) {
  if (!ok())
    return false;
  skipInterRecord();
  std::string Kind, Got;
  if (!readToken(Kind) || !readToken(Got) || !finishLine() ||
      Kind != "section" || Got != Name) {
    fail(std::string("expected 'section ") + Name + "'");
    return false;
  }
  return true;
}

bool StateReader::endSection(const char *Name) {
  if (!ok())
    return false;
  skipInterRecord();
  std::string Kind, Got;
  if (!readToken(Kind) || !readToken(Got) || !finishLine() ||
      Kind != "end" || Got != Name) {
    fail(std::string("expected 'end ") + Name + "'");
    return false;
  }
  return true;
}

bool StateReader::readInt(const char *Key, int64_t &Value) {
  if (!expectRecord("i", Key))
    return false;
  std::string Token;
  int64_t V = 0;
  if (!readToken(Token) || !parseInt64(Token, V) || !finishLine()) {
    fail(std::string("malformed integer value for '") + Key + "'");
    return false;
  }
  Value = V;
  return true;
}

bool StateReader::readUInt(const char *Key, uint64_t &Value) {
  if (!expectRecord("u", Key))
    return false;
  std::string Token;
  uint64_t V = 0;
  if (!readToken(Token) || !parseUInt64(Token, V) || !finishLine()) {
    fail(std::string("malformed unsigned value for '") + Key + "'");
    return false;
  }
  Value = V;
  return true;
}

bool StateReader::readBool(const char *Key, bool &Value) {
  if (!expectRecord("b", Key))
    return false;
  std::string Token;
  if (!readToken(Token) || (Token != "0" && Token != "1") || !finishLine()) {
    fail(std::string("malformed boolean value for '") + Key + "'");
    return false;
  }
  Value = Token == "1";
  return true;
}

bool StateReader::readDouble(const char *Key, double &Value) {
  if (!expectRecord("d", Key))
    return false;
  std::string Token;
  double V = 0.0;
  if (!readToken(Token) || !parseDouble(Token, V) || !finishLine()) {
    fail(std::string("malformed double value for '") + Key + "'");
    return false;
  }
  Value = V;
  return true;
}

bool StateReader::readLengthPrefixed(const char *Kind, const char *Key,
                                     std::string &Value) {
  if (!expectRecord(Kind, Key))
    return false;
  std::string Token;
  uint64_t Length = 0;
  if (!readToken(Token) || !parseUInt64(Token, Length)) {
    fail(std::string("malformed byte count for '") + Key + "'");
    return false;
  }
  // The payload starts after exactly one separator: a space for inline
  // strings, a newline for blobs. Bounding the count by the remaining
  // text keeps hostile counts from allocating anything.
  const char Separator = std::strcmp(Kind, "s") == 0 ? ' ' : '\n';
  if (Pos >= Text.size() || Text[Pos] != Separator) {
    fail(std::string("malformed payload separator for '") + Key + "'");
    return false;
  }
  ++Pos;
  if (Length > Text.size() - Pos) {
    fail(std::string("truncated payload for '") + Key + "'");
    return false;
  }
  std::string Payload(Text, Pos, static_cast<size_t>(Length));
  Pos += static_cast<size_t>(Length);
  if (!finishLine()) {
    fail(std::string("missing newline after payload of '") + Key + "'");
    return false;
  }
  Value = std::move(Payload);
  return true;
}

bool StateReader::readString(const char *Key, std::string &Value) {
  return readLengthPrefixed("s", Key, Value);
}

bool StateReader::readBlob(const char *Key, std::string &Value) {
  return readLengthPrefixed("blob", Key, Value);
}

bool StateReader::atEnd() {
  if (!ok())
    return false;
  skipInterRecord();
  return Pos == Text.size();
}

//===----------------------------------------------------------------------===//
// StateDigest
//===----------------------------------------------------------------------===//

void StateDigest::addBytes(const void *Data, size_t Size) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 1099511628211ULL;
  }
}

void StateDigest::addUInt(uint64_t Value) {
  unsigned char Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<unsigned char>(Value >> (8 * I));
  addBytes(Bytes, sizeof(Bytes));
}

void StateDigest::addInt(int64_t Value) {
  addUInt(static_cast<uint64_t>(Value));
}

void StateDigest::addDouble(double Value) {
  uint64_t Bits = 0;
  static_assert(sizeof(Bits) == sizeof(Value), "double must be 64-bit");
  std::memcpy(&Bits, &Value, sizeof(Bits));
  addUInt(Bits);
}

//===----------------------------------------------------------------------===//
// Snapshot file I/O
//===----------------------------------------------------------------------===//

bool ecosched::writeStateFile(const std::string &Text,
                              const std::string &Path, std::string *Error) {
  FileHandle Out(Path.c_str(), "w");
  if (!Out.F) {
    setError(Error, "cannot open '" + Path + "' for writing");
    return false;
  }
  if (std::fwrite(Text.data(), 1, Text.size(), Out.F) != Text.size()) {
    setError(Error, "short write to '" + Path + "'");
    return false;
  }
  return true;
}

bool ecosched::readStateFile(const std::string &Path, std::string &Text,
                             std::string *Error) {
  FileHandle In(Path.c_str(), "r");
  if (!In.F) {
    setError(Error, "cannot open '" + Path + "' for reading");
    return false;
  }
  Text.clear();
  char Buffer[4096];
  size_t Count = 0;
  while ((Count = std::fread(Buffer, 1, sizeof(Buffer), In.F)) > 0)
    Text.append(Buffer, Count);
  return true;
}

bool ecosched::ensureDirectory(const std::string &Path, std::string *Error) {
  if (Path.empty()) {
    setError(Error, "empty snapshot directory path");
    return false;
  }
  // mkdir -p: create each prefix in turn; EEXIST is success.
  for (size_t I = 1; I <= Path.size(); ++I) {
    if (I != Path.size() && Path[I] != '/')
      continue;
    const std::string Prefix = Path.substr(0, I);
    if (Prefix == "/" || Prefix.empty())
      continue;
    if (::mkdir(Prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      setError(Error, "cannot create directory '" + Prefix + "'");
      return false;
    }
  }
  return true;
}
