//===-- sim/ComputingDomain.cpp - Non-dedicated resource domain ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/ComputingDomain.h"

#include "support/StateCodec.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

using namespace ecosched;

int ComputingDomain::addNode(double Performance, double UnitPrice,
                             std::string Name) {
  const int Id = Pool.addNode(Performance, UnitPrice, std::move(Name));
  BusyByNode.emplace_back();
  Available.push_back(true);
  return Id;
}

bool ComputingDomain::insertInterval(int NodeId, BusyInterval Interval) {
  ECOSCHED_CHECK(exactLess(Interval.Start, Interval.End),
                 "empty busy interval [{}, {}) on node {}", Interval.Start,
                 Interval.End, NodeId);
  if (!isNodeAvailable(NodeId))
    return false;
  if (isBusy(NodeId, TimePoint(Interval.Start), TimePoint(Interval.End)))
    return false;
  auto &Intervals = BusyByNode[static_cast<size_t>(NodeId)];
  auto Pos = std::upper_bound(
      Intervals.begin(), Intervals.end(), Interval,
      [](const BusyInterval &A, const BusyInterval &B) {
        return exactLess(A.Start, B.Start);
      });
  Intervals.insert(Pos, Interval);
  return true;
}

bool ComputingDomain::addLocalTask(int NodeId, TimePoint Start, TimePoint End,
                                   int TaskId) {
  return insertInterval(
      NodeId, {Start.value(), End.value(), OccupancyKind::Local, TaskId});
}

bool ComputingDomain::reserve(int NodeId, TimePoint Start, TimePoint End,
                              int JobId) {
  return insertInterval(
      NodeId, {Start.value(), End.value(), OccupancyKind::External, JobId});
}

bool ComputingDomain::reserveWindow(const Window &W, int JobId) {
  // Validate all member spans before mutating anything.
  for (const WindowSlot &M : W)
    if (isBusy(M.Source.NodeId, W.startTime(), W.startTime() + M.runtime()))
      return false;
  for (const WindowSlot &M : W) {
    const bool Ok = reserve(M.Source.NodeId, W.startTime(),
                            W.startTime() + M.runtime(), JobId);
    ECOSCHED_CHECK(Ok,
                   "window member on node {} became busy during commit of "
                   "job {}",
                   M.Source.NodeId, JobId);
  }
  return true;
}

bool ComputingDomain::isBusy(int NodeId, TimePoint Start, TimePoint End) const {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < BusyByNode.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 BusyByNode.size());
  for (const BusyInterval &B : BusyByNode[static_cast<size_t>(NodeId)]) {
    const double OverlapStart = std::max(Start.value(), B.Start);
    const double OverlapEnd = std::min(End.value(), B.End);
    if (approxGt(OverlapEnd - OverlapStart, 0.0))
      return true;
  }
  return false;
}

SlotList ComputingDomain::vacantSlots(TimePoint HorizonStart,
                                      TimePoint HorizonEnd) const {
  ECOSCHED_CHECK(exactLess(HorizonStart, HorizonEnd),
                 "empty scheduling horizon [{}, {})", HorizonStart.value(),
                 HorizonEnd.value());
  const double RangeStart = HorizonStart.value();
  const double RangeEnd = HorizonEnd.value();
  std::vector<Slot> Slots;
  for (const ResourceNode &Node : Pool) {
    if (!Available[static_cast<size_t>(Node.Id)])
      continue;
    double Cursor = RangeStart;
    for (const BusyInterval &B :
         BusyByNode[static_cast<size_t>(Node.Id)]) {
      if (!exactLess(RangeStart, B.End) || !exactLess(B.Start, RangeEnd))
        continue;
      const double GapEnd = std::max(B.Start, RangeStart);
      if (approxGt(GapEnd, Cursor))
        Slots.emplace_back(Node.Id, Node.Performance, Node.UnitPrice,
                           Cursor, GapEnd);
      Cursor = std::max(Cursor, std::min(B.End, RangeEnd));
    }
    if (approxGt(RangeEnd, Cursor))
      Slots.emplace_back(Node.Id, Node.Performance, Node.UnitPrice, Cursor,
                         RangeEnd);
  }
  return SlotList(std::move(Slots));
}

void ComputingDomain::advanceTo(TimePoint Now) {
  const double Cut = Now.value();
  for (auto &Intervals : BusyByNode)
    std::erase_if(Intervals, [Cut](const BusyInterval &B) {
      return approxLe(B.End, Cut);
    });
}

const std::vector<BusyInterval> &
ComputingDomain::occupancy(int NodeId) const {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < BusyByNode.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 BusyByNode.size());
  return BusyByNode[static_cast<size_t>(NodeId)];
}

void ComputingDomain::setNodePrice(int NodeId, Price UnitPrice) {
  Pool.setUnitPrice(NodeId, UnitPrice);
}

std::vector<int> ComputingDomain::failNode(int NodeId, TimePoint Now) {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < BusyByNode.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 BusyByNode.size());
  Available[static_cast<size_t>(NodeId)] = false;
  const double Cut = Now.value();
  std::vector<int> CancelledJobs;
  auto &Intervals = BusyByNode[static_cast<size_t>(NodeId)];
  for (const BusyInterval &B : Intervals)
    if (approxGt(B.End, Cut) && B.Kind == OccupancyKind::External)
      CancelledJobs.push_back(B.JobId);
  std::erase_if(Intervals, [Cut](const BusyInterval &B) {
    return approxGt(B.End, Cut);
  });
  return CancelledJobs;
}

size_t ComputingDomain::cancelReservations(int NodeId, int JobId) {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < BusyByNode.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 BusyByNode.size());
  return std::erase_if(
      BusyByNode[static_cast<size_t>(NodeId)],
      [JobId](const BusyInterval &B) {
        return B.Kind == OccupancyKind::External && B.JobId == JobId;
      });
}

size_t ComputingDomain::releaseExternalJob(int JobId) {
  size_t Removed = 0;
  for (size_t Node = 0, E = BusyByNode.size(); Node != E; ++Node) {
    if (!Available[Node])
      continue;
    Removed += std::erase_if(BusyByNode[Node], [JobId](const BusyInterval &B) {
      return B.Kind == OccupancyKind::External && B.JobId == JobId;
    });
  }
  return Removed;
}

size_t ComputingDomain::externalReservationCount(int JobId) const {
  size_t Count = 0;
  for (size_t Node = 0, E = BusyByNode.size(); Node != E; ++Node) {
    if (!Available[Node])
      continue;
    for (const BusyInterval &B : BusyByNode[Node])
      Count += B.Kind == OccupancyKind::External && B.JobId == JobId;
  }
  return Count;
}

void ComputingDomain::restoreNode(int NodeId) {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < BusyByNode.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 BusyByNode.size());
  Available[static_cast<size_t>(NodeId)] = true;
}

bool ComputingDomain::isNodeAvailable(int NodeId) const {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < Available.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 Available.size());
  return Available[static_cast<size_t>(NodeId)];
}

double ComputingDomain::externalLoad() const {
  double Total = 0.0;
  for (const auto &Intervals : BusyByNode)
    for (const BusyInterval &B : Intervals)
      if (B.Kind == OccupancyKind::External)
        Total += B.End - B.Start;
  return Total;
}

double ComputingDomain::localLoad() const {
  double Total = 0.0;
  for (const auto &Intervals : BusyByNode)
    for (const BusyInterval &B : Intervals)
      if (B.Kind == OccupancyKind::Local)
        Total += B.End - B.Start;
  return Total;
}

void ComputingDomain::saveState(StateWriter &W) const {
  W.beginSection("domain");
  W.writeUInt("nodes", Pool.size());
  for (const ResourceNode &Node : Pool) {
    W.beginSection("node");
    W.writeInt("id", Node.Id);
    W.writeDouble("performance", Node.Performance);
    W.writeDouble("price", Node.UnitPrice);
    W.writeString("name", Node.Name);
    W.writeBool("available", Available[static_cast<size_t>(Node.Id)]);
    const auto &Intervals = BusyByNode[static_cast<size_t>(Node.Id)];
    W.writeUInt("intervals", Intervals.size());
    for (const BusyInterval &B : Intervals) {
      W.writeDouble("start", B.Start);
      W.writeDouble("end", B.End);
      W.writeUInt("kind", B.Kind == OccupancyKind::Local ? 0 : 1);
      W.writeInt("job", B.JobId);
    }
    W.endSection("node");
  }
  W.endSection("domain");
}

bool ComputingDomain::loadState(StateReader &R) {
  uint64_t NodeCount = 0;
  if (!R.beginSection("domain") || !R.readUInt("nodes", NodeCount))
    return false;
  ComputingDomain Loaded;
  // Per-node records parsed verbatim, for the post-replay canonicality
  // comparison against what the replay actually stored.
  std::vector<std::vector<BusyInterval>> Records;
  std::vector<bool> AvailableFlags;
  for (uint64_t NodeIdx = 0; NodeIdx < NodeCount; ++NodeIdx) {
    int64_t Id = 0;
    double Performance = 0.0, Price = 0.0;
    std::string Name;
    bool IsAvailable = true;
    uint64_t IntervalCount = 0;
    if (!R.beginSection("node") || !R.readInt("id", Id) ||
        !R.readDouble("performance", Performance) ||
        !R.readDouble("price", Price) || !R.readString("name", Name) ||
        !R.readBool("available", IsAvailable) ||
        !R.readUInt("intervals", IntervalCount))
      return false;
    // addNode() CHECKs these; out-of-domain values must be rejected
    // here as a diagnostic instead of reaching an abort.
    if (Id != static_cast<int64_t>(NodeIdx)) {
      R.fail("domain: node ids must be dense indices");
      return false;
    }
    if (!(Performance > 0.0) || !std::isfinite(Performance)) {
      R.fail("domain: node performance must be positive and finite");
      return false;
    }
    if (!(Price >= 0.0) || !std::isfinite(Price)) {
      R.fail("domain: node price must be non-negative and finite");
      return false;
    }
    if (Name.empty()) {
      R.fail("domain: node name must not be empty");
      return false;
    }
    Loaded.addNode(Performance, Price, Name);
    AvailableFlags.push_back(IsAvailable);
    std::vector<BusyInterval> NodeRecords;
    for (uint64_t I = 0; I < IntervalCount; ++I) {
      double Start = 0.0, End = 0.0;
      uint64_t Kind = 0;
      int64_t JobId = 0;
      if (!R.readDouble("start", Start) || !R.readDouble("end", End) ||
          !R.readUInt("kind", Kind) || !R.readInt("job", JobId))
        return false;
      if (!std::isfinite(Start) || !std::isfinite(End) ||
          !exactLess(Start, End)) {
        R.fail("domain: busy interval must have finite end > start");
        return false;
      }
      if (Kind > 1) {
        R.fail("domain: unknown occupancy kind");
        return false;
      }
      if (JobId < std::numeric_limits<int>::min() ||
          JobId > std::numeric_limits<int>::max()) {
        R.fail("domain: interval job id out of range");
        return false;
      }
      BusyInterval B;
      B.Start = Start;
      B.End = End;
      B.Kind = Kind == 0 ? OccupancyKind::Local : OccupancyKind::External;
      B.JobId = static_cast<int>(JobId);
      // Replay through the production insertion path: an interval that
      // overlaps the ones already replayed (or is otherwise rejected)
      // cannot have come from a live domain.
      if (!Loaded.insertInterval(static_cast<int>(Id), B)) {
        R.fail("domain: busy interval overlaps previous occupancy");
        return false;
      }
      NodeRecords.push_back(B);
    }
    Records.push_back(std::move(NodeRecords));
    if (!R.endSection("node"))
      return false;
  }
  if (!R.endSection("domain"))
    return false;
  // Availability is applied after the replay (insertInterval refuses
  // unavailable nodes, but a failed node may legitimately keep already-
  // finished occupancy until the next advanceTo()).
  Loaded.Available = AvailableFlags;
  // Canonicality: the replayed schedules must match the parsed records
  // exactly — order included — so a second save reproduces the snapshot
  // byte for byte.
  for (size_t Node = 0; Node < Records.size(); ++Node) {
    const auto &Stored = Loaded.BusyByNode[Node];
    const auto &Parsed = Records[Node];
    bool Same = Stored.size() == Parsed.size();
    for (size_t I = 0; Same && I < Stored.size(); ++I)
      Same = Stored[I].Start == Parsed[I].Start &&
             Stored[I].End == Parsed[I].End &&
             Stored[I].Kind == Parsed[I].Kind &&
             Stored[I].JobId == Parsed[I].JobId;
    if (!Same) {
      R.fail("domain: occupancy order is not the canonical replay order");
      return false;
    }
  }
  *this = std::move(Loaded);
  return true;
}
