# Empty dependencies file for ablation_bicriteria.
# This may be replaced when dependencies are built.
