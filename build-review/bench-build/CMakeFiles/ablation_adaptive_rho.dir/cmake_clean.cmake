file(REMOVE_RECURSE
  "../bench/ablation_adaptive_rho"
  "../bench/ablation_adaptive_rho.pdb"
  "CMakeFiles/ablation_adaptive_rho.dir/ablation_adaptive_rho.cpp.o"
  "CMakeFiles/ablation_adaptive_rho.dir/ablation_adaptive_rho.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
