//===-- support/Random.cpp - Deterministic random number utilities -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include "support/Check.h"
#include "support/StateCodec.h"

#include <cmath>

using namespace ecosched;

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void RandomGenerator::reseed(uint64_t Seed) {
  SplitMix64 Expander(Seed);
  for (uint64_t &Word : State)
    Word = Expander.next();
}

uint64_t RandomGenerator::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;

  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);

  return Result;
}

double RandomGenerator::nextUnit() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double RandomGenerator::uniformReal(double Lo, double Hi) {
  ECOSCHED_CHECK(Lo <= Hi, "empty real range [{}, {}]", Lo, Hi);
  return Lo + (Hi - Lo) * nextUnit();
}

int64_t RandomGenerator::uniformInt(int64_t Lo, int64_t Hi) {
  ECOSCHED_CHECK(Lo <= Hi, "empty integer range [{}, {}]", Lo, Hi);
  const uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  // Rejection sampling to avoid modulo bias.
  const uint64_t Limit = UINT64_MAX - UINT64_MAX % Span;
  uint64_t Value = next();
  while (Value >= Limit)
    Value = next();
  return Lo + static_cast<int64_t>(Value % Span);
}

bool RandomGenerator::bernoulli(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextUnit() < P;
}

int64_t RandomGenerator::poisson(double Mean) {
  ECOSCHED_CHECK(Mean >= 0.0,
                 "Poisson mean must be non-negative, got {}", Mean);
  if (Mean <= 0.0)
    return 0;
  // Knuth: multiply uniforms until the product drops below e^-Mean.
  const double Threshold = std::exp(-Mean);
  int64_t Count = -1;
  double Product = 1.0;
  do {
    ++Count;
    Product *= nextUnit();
  } while (Product > Threshold);
  return Count;
}

RandomGenerator RandomGenerator::fork() {
  RandomGenerator Child(next());
  // Decorrelate the child further from the parent stream.
  Child.next();
  return Child;
}

void RandomGenerator::saveState(StateWriter &W) const {
  W.beginSection("rng");
  W.writeUInt("s0", State[0]);
  W.writeUInt("s1", State[1]);
  W.writeUInt("s2", State[2]);
  W.writeUInt("s3", State[3]);
  W.endSection("rng");
}

bool RandomGenerator::loadState(StateReader &R) {
  uint64_t Words[4] = {0, 0, 0, 0};
  if (!R.beginSection("rng") || !R.readUInt("s0", Words[0]) ||
      !R.readUInt("s1", Words[1]) || !R.readUInt("s2", Words[2]) ||
      !R.readUInt("s3", Words[3]) || !R.endSection("rng"))
    return false;
  for (int I = 0; I < 4; ++I)
    State[I] = Words[I];
  return true;
}
