//===-- core/SlotFilter.h - Per-job admissible slot views ----------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-job admissibility index for the alternative sweep. For every job
/// of a batch the filter precomputes the subsequence of the master slot
/// list that passes the search algorithm's request-static predicates
/// (SlotSearchAlgorithm::admits) — performance, price cap, minimal
/// length, and the own-start deadline check, depending on the
/// algorithm. The sweep then scans only that view, and the filter keeps
/// every view exact *incrementally* as committed windows damage the
/// master list: each subtraction splices the affected slot in place of
/// a full rescan, dropping remainder pieces that became inadmissible.
///
/// Views are additionally bounded by the job's scan horizon: slots at
/// or past the deadline's scanEndBefore() cutoff can never be examined
/// by the deadline-bounded search loops, so they are excluded up front
/// — with a finite deadline a view build is O(log n + k) in the master
/// size.
///
/// The view invariant (docs/PERFORMANCE.md): after any damage sequence,
/// view(J) is bitwise-equal to filteredCopy(Master, Jobs[J].Request) of
/// the equally-damaged master list. This holds because admits() is
/// monotone under slot shrinking, the scan-horizon cutoff only ever
/// drops slots a search cannot reach, and applyDamage() mirrors the
/// master's subtraction arithmetic on verbatim slot copies.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_SLOTFILTER_H
#define ECOSCHED_CORE_SLOTFILTER_H

#include "core/SearchAlgorithm.h"

#include <cstddef>
#include <vector>

namespace ecosched {

/// Precomputed per-job admissible slot views, maintained incrementally
/// under window damage.
class SlotFilter {
public:
  /// Builds one view per job of \p Jobs from \p Master. O(jobs * slots)
  /// once per sweep; every later update is a splice. \p Master must be
  /// structurally valid (the sweep validates it at entry; a view is a
  /// verbatim subsequence, so sortedness and disjointness inherit).
  SlotFilter(const SlotList &Master, const Batch &Jobs,
             const SlotSearchAlgorithm &Algo);

  /// The admissible subsequence of the (damaged) master list for job
  /// \p J. Slots are verbatim copies, in master order.
  const SlotList &view(size_t J) const { return Views[J]; }

  size_t jobCount() const { return Views.size(); }

  /// Propagates a committed window's damage into every view: for each
  /// member span, the containing view slot (when present) is split
  /// exactly as the master split it, and remainder pieces re-enter a
  /// view only if still admissible for that job. Views that never held
  /// the member slot (it was inadmissible) need no update — by
  /// monotonicity its remainders are inadmissible too.
  void applyDamage(const Window &W);

  /// True if every member slot of \p W is still present verbatim in
  /// view \p J. When it is, a window speculatively found for job \p J
  /// on an earlier snapshot is still exactly what a fresh search would
  /// return (the member-intact reuse argument, docs/PERFORMANCE.md).
  bool windowIntact(size_t J, const Window &W) const;

  /// The admissible subsequence of \p List for \p Request as a fresh
  /// list. Rebuild oracle for the incremental maintenance (tests) and
  /// the filtered serial path's one-off construction.
  static SlotList filteredCopy(const SlotList &List,
                               const ResourceRequest &Request,
                               const SlotSearchAlgorithm &Algo);

  /// True if a deadline-bounded scan can reach \p S at all: the search
  /// loops stop at SlotList::scanEndBefore(Deadline), so slots past
  /// that horizon can never influence a window and need not enter a
  /// view. Views, filteredCopy(), the damage Keep filters, and the
  /// persistent filter's delta re-admission all apply this same cutoff,
  /// which is what preserves the view invariant.
  static bool inScanHorizon(const Slot &S, const ResourceRequest &Request) {
    return approxLt(S.Start, Request.Deadline);
  }

private:
  const SlotSearchAlgorithm &Algo;
  std::vector<ResourceRequest> Requests;
  std::vector<SlotList> Views;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_SLOTFILTER_H
