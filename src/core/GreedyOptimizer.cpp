//===-- core/GreedyOptimizer.cpp - Repair-and-improve heuristic -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/GreedyOptimizer.h"

#include <vector>

using namespace ecosched;

CombinationChoice
GreedyOptimizer::solve(const CombinationProblem &Problem) const {
  CombinationChoice Infeasible;
  const size_t JobCount = Problem.PerJob.size();
  if (JobCount == 0)
    return Infeasible;
  const bool Minimize = Problem.Direction == DirectionKind::Minimize;

  // Start from the per-job minimum constraint weight (ties broken by the
  // better objective), the most conservative selection possible.
  std::vector<size_t> Selected(JobCount);
  double Weight = 0.0;
  for (size_t I = 0; I != JobCount; ++I) {
    const auto &Alts = Problem.PerJob[I];
    if (Alts.empty())
      return Infeasible;
    size_t Best = 0;
    for (size_t A = 1, E = Alts.size(); A != E; ++A) {
      const double DW =
          Alts[A].get(Problem.Constraint) - Alts[Best].get(Problem.Constraint);
      const double DG =
          Alts[A].get(Problem.Objective) - Alts[Best].get(Problem.Objective);
      if (DW < -1e-12 ||
          (DW <= 1e-12 && (Minimize ? DG < 0.0 : DG > 0.0)))
        Best = A;
    }
    Selected[I] = Best;
    Weight += Alts[Best].get(Problem.Constraint);
  }
  if (approxGt(Weight, Problem.Limit))
    return Infeasible;

  // Improve: repeatedly take the swap with the best objective gain that
  // still fits the limit, preferring gain per extra weight.
  for (;;) {
    size_t SwapJob = JobCount;
    size_t SwapAlt = 0;
    double SwapScore = 0.0;
    for (size_t I = 0; I != JobCount; ++I) {
      const auto &Alts = Problem.PerJob[I];
      const AlternativeValue &Cur = Alts[Selected[I]];
      for (size_t A = 0, E = Alts.size(); A != E; ++A) {
        if (A == Selected[I])
          continue;
        const AlternativeValue &Cand = Alts[A];
        const double Gain =
            Minimize ? Cur.get(Problem.Objective) - Cand.get(Problem.Objective)
                     : Cand.get(Problem.Objective) - Cur.get(Problem.Objective);
        if (Gain <= 1e-12)
          continue;
        const double Extra =
            Cand.get(Problem.Constraint) - Cur.get(Problem.Constraint);
        if (approxGt(Weight + Extra, Problem.Limit))
          continue;
        // Gain per unit of extra weight; free or weight-saving swaps
        // score as pure gain.
        const double Score = Extra > 1e-12 ? Gain / Extra : Gain * 1e12;
        if (SwapJob == JobCount || Score > SwapScore) {
          SwapJob = I;
          SwapAlt = A;
          SwapScore = Score;
        }
      }
    }
    if (SwapJob == JobCount)
      break;
    const auto &Alts = Problem.PerJob[SwapJob];
    Weight += Alts[SwapAlt].get(Problem.Constraint) -
              Alts[Selected[SwapJob]].get(Problem.Constraint);
    Selected[SwapJob] = SwapAlt;
  }
  return evaluateSelection(Problem, std::move(Selected));
}
