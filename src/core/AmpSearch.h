//===-- core/AmpSearch.h - Algorithm based on Maximal job Price ----*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AMP — the Algorithm based on Maximal job Price (Section 3). The
/// per-slot price cap of ALP is replaced by the job budget S = C*t*N:
/// the scan accumulates every slot that satisfies the performance and
/// length conditions, and whenever at least N slots are alive it tests
/// whether the N cheapest of them fit the budget. The first fitting set
/// is returned; surplus slots are left in the list. Any ALP window is
/// AMP-admissible, but AMP can additionally mix individually expensive
/// slots into a window as long as the total stays within S (Section 6).
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_AMPSEARCH_H
#define ECOSCHED_CORE_AMPSEARCH_H

#include "core/SearchAlgorithm.h"

namespace ecosched {

/// The AMP slot-set search.
class AmpSearch : public SlotSearchAlgorithm {
public:
  std::string_view name() const override { return "AMP"; }

  std::optional<Window>
  findWindow(const SlotList &List, const ResourceRequest &Request,
             SearchStats *Stats = nullptr) const override;

  /// Conditions 2a/2b plus the own-start deadline check; the per-slot
  /// price cap 2c is deliberately not part of AMP's admissibility.
  bool admits(const Slot &S, const ResourceRequest &Request) const override;

  /// Remainder fast path: performance is invariant under span
  /// shrinking, so only condition 2b (length) and the own-start
  /// deadline are re-checked (AMP has no per-slot price cap).
  bool admitsRemainder(const Slot &Piece,
                       const ResourceRequest &Request) const override;

  /// Scan that skips the static predicate re-checks on a SlotFilter view.
  std::optional<Window>
  findWindowFiltered(const SlotList &Filtered,
                     const ResourceRequest &Request,
                     SearchStats *Stats = nullptr) const override;

  /// AMP's output is a pure function of the per-start alive-slot sets
  /// and their (damage-invariant) usage costs, so member-intact
  /// speculative windows survive list damage (docs/PERFORMANCE.md).
  bool supportsSpeculativeReuse() const override { return true; }
};

} // namespace ecosched

#endif // ECOSCHED_CORE_AMPSEARCH_H
