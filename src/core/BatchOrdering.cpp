//===-- core/BatchOrdering.cpp - Batch priority policies ------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/BatchOrdering.h"

#include <algorithm>

using namespace ecosched;

std::string_view ecosched::orderingPolicyName(OrderingPolicyKind Policy) {
  switch (Policy) {
  case OrderingPolicyKind::SubmissionOrder:
    return "submission";
  case OrderingPolicyKind::WidestFirst:
    return "widest-first";
  case OrderingPolicyKind::NarrowestFirst:
    return "narrowest-first";
  case OrderingPolicyKind::LargestWorkFirst:
    return "largest-work-first";
  case OrderingPolicyKind::SmallestWorkFirst:
    return "smallest-work-first";
  }
  return "unknown";
}

Batch ecosched::orderBatch(const Batch &Jobs, OrderingPolicyKind Policy) {
  Batch Ordered = Jobs;
  const auto Work = [](const Job &J) {
    return static_cast<double>(J.Request.NodeCount) * J.Request.Volume;
  };
  switch (Policy) {
  case OrderingPolicyKind::SubmissionOrder:
    break;
  case OrderingPolicyKind::WidestFirst:
    std::stable_sort(Ordered.begin(), Ordered.end(),
                     [](const Job &A, const Job &B) {
                       return A.Request.NodeCount > B.Request.NodeCount;
                     });
    break;
  case OrderingPolicyKind::NarrowestFirst:
    std::stable_sort(Ordered.begin(), Ordered.end(),
                     [](const Job &A, const Job &B) {
                       return A.Request.NodeCount < B.Request.NodeCount;
                     });
    break;
  case OrderingPolicyKind::LargestWorkFirst:
    std::stable_sort(Ordered.begin(), Ordered.end(),
                     [&](const Job &A, const Job &B) {
                       return Work(A) > Work(B);
                     });
    break;
  case OrderingPolicyKind::SmallestWorkFirst:
    std::stable_sort(Ordered.begin(), Ordered.end(),
                     [&](const Job &A, const Job &B) {
                       return Work(A) < Work(B);
                     });
    break;
  }
  return Ordered;
}
