# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper "/root/repo/build-review/examples/paper_example")
set_tests_properties(example_paper PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vo "/root/repo/build-review/examples/vo_simulation" "--iterations=6")
set_tests_properties(example_vo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tradeoff "/root/repo/build-review/examples/tradeoff_explorer" "--iterations=60")
set_tests_properties(example_tradeoff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure "/root/repo/build-review/examples/failure_recovery" "--iterations=8")
set_tests_properties(example_failure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_replay "/root/repo/build-review/examples/trace_replay" "--seed=5")
set_tests_properties(example_trace_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_generate "/root/repo/build-review/examples/scheduler_cli" "--mode=generate" "--slots=ctest_slots.trace" "--jobs=ctest_jobs.trace")
set_tests_properties(example_cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_schedule "/root/repo/build-review/examples/scheduler_cli" "--mode=schedule" "--slots=ctest_slots.trace" "--jobs=ctest_jobs.trace")
set_tests_properties(example_cli_schedule PROPERTIES  DEPENDS "example_cli_generate" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
