# Empty dependencies file for ablation_price_factor.
# This may be replaced when dependencies are built.
