//===-- support/Table.cpp - Console table and CSV writers ----------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "support/Check.h"

#include <algorithm>

using namespace ecosched;

std::string ecosched::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

void TablePrinter::addColumn(std::string Header, AlignKind Align) {
  ECOSCHED_CHECK(Rows.empty(),
                 "columns must be declared before rows ({} rows present)",
                 Rows.size());
  Headers.push_back(std::move(Header));
  Aligns.push_back(Align);
}

void TablePrinter::beginRow() {
  ECOSCHED_CHECK(!Headers.empty(), "declare columns first");
  ECOSCHED_CHECK(Rows.empty() || Rows.back().size() == Headers.size(),
                 "previous row is incomplete: {} cells for {} columns",
                 Rows.empty() ? 0 : Rows.back().size(), Headers.size());
  Rows.emplace_back();
}

void TablePrinter::addCell(std::string Text) {
  ECOSCHED_CHECK(!Rows.empty(), "beginRow() before adding cells");
  ECOSCHED_CHECK(Rows.back().size() < Headers.size(),
                 "row has too many cells: {} for {} columns",
                 Rows.back().size() + 1, Headers.size());
  Rows.back().push_back(std::move(Text));
}

void TablePrinter::addCell(long long Value) {
  addCell(std::to_string(Value));
}

void TablePrinter::addCell(double Value, int Precision) {
  addCell(formatDouble(Value, Precision));
}

void TablePrinter::print(std::FILE *Out) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0, E = Headers.size(); I != E; ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0, E = Row.size(); I != E; ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto PrintCell = [&](const std::string &Text, size_t Col) {
    const int Width = static_cast<int>(Widths[Col]);
    if (Aligns[Col] == AlignKind::Left)
      std::fprintf(Out, "%-*s", Width, Text.c_str());
    else
      std::fprintf(Out, "%*s", Width, Text.c_str());
    std::fputs(Col + 1 == Headers.size() ? "\n" : "  ", Out);
  };

  for (size_t I = 0, E = Headers.size(); I != E; ++I)
    PrintCell(Headers[I], I);
  for (size_t I = 0, E = Headers.size(); I != E; ++I) {
    std::string Rule(Widths[I], '-');
    PrintCell(Rule, I);
  }
  for (const auto &Row : Rows)
    for (size_t I = 0, E = Row.size(); I != E; ++I)
      PrintCell(Row[I], I);
}

static void writeCsvField(std::FILE *Out, const std::string &Field) {
  const bool NeedsQuoting =
      Field.find_first_of(",\"\n") != std::string::npos;
  if (!NeedsQuoting) {
    std::fputs(Field.c_str(), Out);
    return;
  }
  std::fputc('"', Out);
  for (char C : Field) {
    if (C == '"')
      std::fputc('"', Out);
    std::fputc(C, Out);
  }
  std::fputc('"', Out);
}

bool TablePrinter::writeCsv(const std::string &Path) const {
  // archlint-allow(file-io): user-facing artifact writer (chart/CSV
  // output), not engine state; the snapshot format stays in StateCodec.
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  auto WriteRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0, E = Row.size(); I != E; ++I) {
      if (I)
        std::fputc(',', Out);
      writeCsvField(Out, Row[I]);
    }
    std::fputc('\n', Out);
  };
  WriteRow(Headers);
  for (const auto &Row : Rows)
    WriteRow(Row);
  std::fclose(Out);
  return true;
}
