file(REMOVE_RECURSE
  "CMakeFiles/property_tests.dir/property/BatchSearchPropertyTest.cpp.o"
  "CMakeFiles/property_tests.dir/property/BatchSearchPropertyTest.cpp.o.d"
  "CMakeFiles/property_tests.dir/property/ModelFuzzTest.cpp.o"
  "CMakeFiles/property_tests.dir/property/ModelFuzzTest.cpp.o.d"
  "CMakeFiles/property_tests.dir/property/OptimizerPropertyTest.cpp.o"
  "CMakeFiles/property_tests.dir/property/OptimizerPropertyTest.cpp.o.d"
  "CMakeFiles/property_tests.dir/property/SearchPropertyTest.cpp.o"
  "CMakeFiles/property_tests.dir/property/SearchPropertyTest.cpp.o.d"
  "CMakeFiles/property_tests.dir/property/SubtractionPropertyTest.cpp.o"
  "CMakeFiles/property_tests.dir/property/SubtractionPropertyTest.cpp.o.d"
  "CMakeFiles/property_tests.dir/property/WorkloadShapeTest.cpp.o"
  "CMakeFiles/property_tests.dir/property/WorkloadShapeTest.cpp.o.d"
  "property_tests"
  "property_tests.pdb"
  "property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
