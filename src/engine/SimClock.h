//===-- engine/SimClock.h - Iteration cadence and horizon math -----*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The time axis of the iterative VO loop (Section 1: scheduling runs
/// "iteratively on periodically updated local schedules"). One object
/// owns the iteration cadence — the current simulation time, the fixed
/// period between scheduling iterations, and the look-ahead horizon
/// published to the metascheduler — so the queue and ledger layers
/// never do their own clock arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_ENGINE_SIMCLOCK_H
#define ECOSCHED_ENGINE_SIMCLOCK_H

#include "support/Units.h"

#include <cstddef>

namespace ecosched {

class StateWriter;
class StateReader;

/// Iteration cadence of a VO: current time, period, and horizon.
class SimClock {
public:
  /// \p IterationPeriod and \p HorizonLength must be positive.
  SimClock(Duration IterationPeriod, Duration HorizonLength);

  /// Current simulation time (start of the pending iteration).
  TimePoint now() const { return TimePoint(Clock); }

  /// Time between scheduling iterations.
  Duration period() const { return Duration(IterationPeriod); }

  /// Length of the look-ahead horizon.
  Duration horizonLength() const { return Duration(HorizonLength); }

  /// End of the slot-publication horizon for the pending iteration.
  TimePoint horizonEnd() const { return TimePoint(Clock + HorizonLength); }

  /// Number of completed iterations.
  size_t iteration() const { return Iterations; }

  /// Advances to the next iteration boundary. The clock accumulates
  /// period by period (not Iterations * Period) so the facade stays
  /// bitwise-identical to the historical monolithic loop.
  void advance() {
    Clock += IterationPeriod;
    ++Iterations;
  }

  /// Serializes the cadence and the accumulated clock. The clock value
  /// itself is stored (not recomputed from the iteration count) because
  /// advance() accumulates period by period.
  void saveState(StateWriter &W) const;

  /// Restores a state written by saveState. Rejects non-positive or
  /// non-finite cadence and a non-finite clock with a diagnostic on the
  /// reader; the clock is unchanged unless the load succeeds.
  bool loadState(StateReader &R);

private:
  double IterationPeriod;
  double HorizonLength;
  double Clock = 0.0;
  size_t Iterations = 0;
};

} // namespace ecosched

#endif // ECOSCHED_ENGINE_SIMCLOCK_H
