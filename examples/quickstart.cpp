//===-- examples/quickstart.cpp - Minimal EcoSched walkthrough ------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build a tiny slot list by hand, describe a job's resource
/// request, and co-allocate a window with ALP and AMP. Shows the core
/// difference between the two algorithms on five lines of data: AMP may
/// use an individually expensive slot as long as the whole window fits
/// the job budget S = C*t*N.
///
/// Run: build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "sim/SlotList.h"

#include <cstdio>

using namespace ecosched;

static void printWindow(const char *Label, const Window &W) {
  std::printf("%s window: start=%.0f span=%.1f cost=%.1f\n", Label,
              W.startTime().value(), W.timeSpan().value(), W.totalCost().value());
  for (const WindowSlot &M : W)
    std::printf("  node %d  perf %.1f  price %.1f  busy [%.0f, %.1f)\n",
                M.Source.NodeId, M.Source.Performance, M.Source.UnitPrice,
                W.startTime().value(), W.startTime().value() + M.Runtime);
}

int main() {
  // Five vacant slots published by the resource domains. A slot is a
  // span on one node; the node's performance and unit price ride along.
  //                    node perf price start end
  const SlotList Slots({{0, 1.0, 2.0, 0.0, 300.0},
                        {1, 1.0, 4.5, 0.0, 300.0},
                        {2, 2.0, 5.0, 40.0, 300.0},
                        {3, 1.0, 2.5, 80.0, 300.0},
                        {4, 1.5, 3.0, 120.0, 300.0}});

  // One parallel job: two concurrent tasks of volume 100 (etalon time
  // units), nodes at least perf 1.0, at most 3.0 money per time unit
  // per slot.
  ResourceRequest Request;
  Request.NodeCount = 2;
  Request.Volume = 100.0;
  Request.MinPerformance = 1.0;
  Request.MaxUnitPrice = 3.0;

  std::printf("request: %d nodes, volume %.0f, min perf %.1f, "
              "price cap %.1f, AMP budget %.0f\n\n",
              Request.NodeCount, Request.Volume, Request.MinPerformance,
              Request.MaxUnitPrice, Request.budget().value());

  // ALP: every slot must individually respect the price cap.
  AlpSearch Alp;
  if (const auto W = Alp.findWindow(Slots, Request))
    printWindow("ALP", *W);
  else
    std::printf("ALP found no window\n");

  // AMP: the cap becomes a whole-job budget; expensive-but-fast slots
  // are admissible, typically yielding an earlier or faster window.
  AmpSearch Amp;
  if (const auto W = Amp.findWindow(Slots, Request))
    printWindow("AMP", *W);
  else
    std::printf("AMP found no window\n");

  return 0;
}
