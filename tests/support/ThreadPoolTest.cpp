//===-- tests/support/ThreadPoolTest.cpp - Pool primitive tests -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// Contract tests for the shared ThreadPool (docs/CONCURRENCY.md):
/// every index runs exactly once, results land at their own index,
/// exceptions surface on the caller, nested submissions cannot
/// deadlock, and a pool stays usable after a failed call.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

using namespace ecosched;

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::resolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::resolveThreadCount(5), 5u);
  EXPECT_EQ(ThreadPool(3).threadCount(), 3u);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool Pool(4);
  std::atomic<size_t> Calls{0};
  Pool.parallelFor(0, 0, 1, [&](size_t) { ++Calls; });
  Pool.parallelFor(7, 7, 3, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0u);
}

TEST(ThreadPoolTest, SingleItemRunsOnce) {
  ThreadPool Pool(4);
  std::atomic<size_t> Calls{0};
  size_t SeenIndex = ~size_t{0};
  Pool.parallelFor(41, 42, 1, [&](size_t I) {
    ++Calls;
    SeenIndex = I;
  });
  EXPECT_EQ(Calls.load(), 1u);
  EXPECT_EQ(SeenIndex, 41u);
}

TEST(ThreadPoolTest, EveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t Count = 1000;
  std::vector<std::atomic<int>> Hits(Count);
  Pool.parallelFor(0, Count, 7, [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I < Count; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, ParallelMapKeepsResultOrder) {
  ThreadPool Pool(8);
  const std::vector<size_t> Out = Pool.parallelMap<size_t>(
      257, 3, [](size_t I) { return I * I; });
  ASSERT_EQ(Out.size(), 257u);
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], I * I);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool Pool(1);
  std::vector<size_t> Order;
  // With one thread no workers exist; the range runs on the caller in
  // ascending order.
  Pool.parallelFor(0, 5, 2, [&](size_t I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ChunkLargerThanRange) {
  ThreadPool Pool(4);
  std::atomic<size_t> Sum{0};
  Pool.parallelFor(0, 10, 64, [&](size_t I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 45u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(0, 100, 1,
                                [](size_t I) {
                                  if (I == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PoolUsableAfterException) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(0, 50, 1,
                                [](size_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  std::atomic<size_t> Calls{0};
  Pool.parallelFor(0, 50, 1, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls.load(), 50u);
}

TEST(ThreadPoolTest, NestedSubmissionCompletes) {
  ThreadPool Pool(4);
  constexpr size_t Outer = 8;
  constexpr size_t Inner = 16;
  std::vector<std::vector<size_t>> Results(Outer);
  // A body submitting to its own pool must not deadlock even though
  // every sibling worker is busy with the outer range; the nested range
  // runs inline on the submitting thread.
  Pool.parallelFor(0, Outer, 1, [&](size_t O) {
    Results[O] = Pool.parallelMap<size_t>(
        Inner, 4, [O](size_t I) { return O * 100 + I; });
  });
  for (size_t O = 0; O < Outer; ++O) {
    ASSERT_EQ(Results[O].size(), Inner);
    for (size_t I = 0; I < Inner; ++I)
      EXPECT_EQ(Results[O][I], O * 100 + I);
  }
}

TEST(ThreadPoolTest, ReusedAcrossManyCalls) {
  // The pool persists across calls (the Experiment loop issues one call
  // per iteration block); exercise the reuse path under load.
  ThreadPool Pool(4);
  std::atomic<size_t> Total{0};
  for (int Round = 0; Round < 50; ++Round)
    Pool.parallelFor(0, 40, 1, [&](size_t) { ++Total; });
  EXPECT_EQ(Total.load(), 2000u);
}
