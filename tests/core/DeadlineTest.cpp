//===-- tests/core/DeadlineTest.cpp - Deadline-constrained requests -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "core/BatchSearch.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

ResourceRequest makeRequest(int Nodes, double Volume, double Deadline) {
  ResourceRequest Req;
  Req.NodeCount = Nodes;
  Req.Volume = Volume;
  Req.MinPerformance = 1.0;
  Req.MaxUnitPrice = 2.0;
  Req.Deadline = Deadline;
  return Req;
}

/// Two early short slots and two late long ones.
SlotList makeList() {
  return SlotList({Slot(0, 1.0, 1.0, 0.0, 60.0),
                   Slot(1, 1.0, 1.0, 0.0, 60.0),
                   Slot(2, 1.0, 1.0, 100.0, 400.0),
                   Slot(3, 1.0, 1.0, 100.0, 400.0)});
}

} // namespace

TEST(DeadlineTest, InfiniteDeadlineChangesNothing) {
  AmpSearch Amp;
  const auto W = Amp.findWindow(makeList(), makeRequest(2, 100.0, 1e18));
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->startTime().value(), 100.0);
}

TEST(DeadlineTest, TightDeadlineRejectsLateWindows) {
  AmpSearch Amp;
  // Only the late slots are long enough for volume 100, but they end
  // past the deadline 150.
  EXPECT_FALSE(
      Amp.findWindow(makeList(), makeRequest(2, 100.0, 150.0))
          .has_value());
  // Deadline 200 admits [100, 200).
  const auto W = Amp.findWindow(makeList(), makeRequest(2, 100.0, 200.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_LE(W->endTime().value(), 200.0 + 1e-9);
}

TEST(DeadlineTest, ShortJobFitsEarlySlotsBeforeDeadline) {
  AlpSearch Alp;
  const auto W = Alp.findWindow(makeList(), makeRequest(2, 50.0, 60.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->startTime().value(), 0.0);
  EXPECT_LE(W->endTime().value(), 60.0 + 1e-9);
}

TEST(DeadlineTest, DeadlineEnablesEarlyScanExit) {
  std::vector<Slot> Slots;
  for (int I = 0; I < 100; ++I)
    Slots.emplace_back(I, 1.0, 1.0, I * 10.0, I * 10.0 + 200.0);
  const SlotList List(std::move(Slots));
  AlpSearch Alp;
  SearchStats Stats;
  // Deadline 50: only slots starting before 50 can ever qualify.
  EXPECT_FALSE(
      Alp.findWindow(List, makeRequest(60, 40.0, 50.0), &Stats)
          .has_value());
  EXPECT_LE(Stats.SlotsExamined, 6u);
}

TEST(DeadlineTest, ExpirationAccountsForDeadline) {
  // Slot 0 is alive at t=0 and could cover the runtime, but the window
  // start is pushed to t=40 by slot 1's arrival, where slot 0's task
  // would finish at 140 > deadline 120; a third slot is needed.
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 400.0),
                 Slot(1, 1.0, 1.0, 40.0, 400.0),
                 Slot(2, 1.0, 1.0, 40.0, 400.0)});
  AmpSearch Amp;
  ResourceRequest Req = makeRequest(2, 100.0, 120.0);
  EXPECT_FALSE(Amp.findWindow(List, Req).has_value());
  // At deadline 140 the pair (0, 1) works at t=40... but so does the
  // earlier check: t=40 + 100 = 140 <= 140.
  Req.Deadline = 140.0;
  const auto W = Amp.findWindow(List, Req);
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->startTime().value(), 40.0);
}

TEST(DeadlineTest, OnePassBatchRespectsPerJobDeadlines) {
  Batch Jobs;
  Job A;
  A.Id = 1;
  A.Request = makeRequest(2, 50.0, 60.0); // Must run in the early slots.
  Job B;
  B.Id = 2;
  B.Request = makeRequest(2, 100.0, 1e18); // Unconstrained.
  Jobs.push_back(A);
  Jobs.push_back(B);

  OnePassBatchScheduler Scheduler;
  const BatchAssignment Assignment = Scheduler.assign(makeList(), Jobs);
  ASSERT_EQ(Assignment.placedCount(), 2u);
  EXPECT_LE(Assignment.PerJob[0]->endTime().value(), 60.0 + 1e-9);
  EXPECT_GT(Assignment.PerJob[1]->endTime().value(), 60.0);
}

/// Property: with random deadlines, every found window finishes in
/// time, and ALP/AMP still agree with the exhaustive oracle.
class DeadlinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeadlinePropertyTest, WindowsFinishByDeadlineAndMatchOracle) {
  RandomGenerator Rng(GetParam());
  const SlotList List = SlotGenerator().generate(Rng);
  Batch Jobs = JobGenerator().generate(Rng);
  for (Job &J : Jobs)
    J.Request.Deadline = Rng.uniformReal(80.0, 400.0);

  AlpSearch Alp;
  AmpSearch Amp;
  BackfillSearch AlpOracle(PriceRuleKind::PerSlotCap);
  BackfillSearch AmpOracle(PriceRuleKind::JobBudget);
  for (const Job &J : Jobs) {
    const auto A = Alp.findWindow(List, J.Request);
    const auto AO = AlpOracle.findWindow(List, J.Request);
    ASSERT_EQ(A.has_value(), AO.has_value());
    if (A) {
      EXPECT_LE(A->endTime().value(), J.Request.Deadline + 1e-9);
      EXPECT_NEAR(A->startTime().value(), AO->startTime().value(), 1e-9);
    }
    const auto M = Amp.findWindow(List, J.Request);
    const auto MO = AmpOracle.findWindow(List, J.Request);
    ASSERT_EQ(M.has_value(), MO.has_value());
    if (M) {
      EXPECT_LE(M->endTime().value(), J.Request.Deadline + 1e-9);
      EXPECT_NEAR(M->startTime().value(), MO->startTime().value(), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlinePropertyTest,
                         ::testing::Range<uint64_t>(1, 17));
