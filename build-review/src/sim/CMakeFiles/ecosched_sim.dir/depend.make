# Empty dependencies file for ecosched_sim.
# This may be replaced when dependencies are built.
