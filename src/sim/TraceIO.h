//===-- sim/TraceIO.h - Workload trace persistence ----------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-text persistence for slot lists and job batches, so that a
/// workload produced by the generators (or captured from a domain) can
/// be archived, diffed, and replayed bit-exactly across machines. The
/// format is line-oriented:
///
///   # ecosched slot trace v1
///   slot <node> <performance> <unit-price> <start> <end>
///
///   # ecosched job trace v1
///   job <id> <nodes> <volume> <min-perf> <max-price> <rho> <span|volume>
///
/// Lines starting with '#' and blank lines are ignored. All load and
/// parse functions report malformed input via the optional error string
/// and never abort (library code raises no exceptions) — including on
/// non-finite numeric fields ("nan"/"inf"), which are rejected at parse
/// time so adversarial traces can never reach the Slot constructor's
/// contract checks. The in-memory parse/write pair is the file pair's
/// backing and the surface the fuzz harnesses drive (fuzz/).
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_TRACEIO_H
#define ECOSCHED_SIM_TRACEIO_H

#include "sim/Job.h"
#include "sim/SlotList.h"

#include <optional>
#include <string>

namespace ecosched {

class StateWriter;
class StateReader;

/// Renders \p List in the slot-trace text format.
std::string writeSlotTrace(const SlotList &List);

/// Parses slot-trace text; std::nullopt on any malformed, out-of-domain,
/// or non-finite field.
std::optional<SlotList> parseSlotTrace(const std::string &Text,
                                       std::string *Error = nullptr);

/// Renders \p Jobs in the job-trace text format.
std::string writeBatchTrace(const Batch &Jobs);

/// Parses job-trace text; std::nullopt on malformed input.
std::optional<Batch> parseBatchTrace(const std::string &Text,
                                     std::string *Error = nullptr);

/// Writes \p List to \p Path. \returns false on I/O failure, filling
/// \p Error when provided.
bool saveSlotTrace(const SlotList &List, const std::string &Path,
                   std::string *Error = nullptr);

/// Reads a slot trace; std::nullopt on I/O or parse failure.
std::optional<SlotList> loadSlotTrace(const std::string &Path,
                                      std::string *Error = nullptr);

/// Writes \p Jobs to \p Path.
bool saveBatchTrace(const Batch &Jobs, const std::string &Path,
                    std::string *Error = nullptr);

/// Reads a job batch trace; std::nullopt on I/O or parse failure.
std::optional<Batch> loadBatchTrace(const std::string &Path,
                                    std::string *Error = nullptr);

/// \name Snapshot-protocol job records
/// The job-trace line above predates deadlines and budget policies, so
/// the snapshot protocol (docs/PERSISTENCE.md) serializes the complete
/// Job through StateCodec records instead. These live here rather than
/// in support/ because the support layer must not know about sim types.
/// @{

/// Writes every field of \p J, including the budget policy and the
/// (possibly infinite) deadline, as one "job" section.
void saveJobState(StateWriter &W, const Job &J);

/// Reads a "job" section into \p J. Rejects — with a diagnostic on the
/// reader, never an abort — any field the generators cannot produce:
/// non-positive node counts, volumes, or performances, non-finite
/// prices or budget factors, unknown budget policies, NaN deadlines.
/// \p J is unchanged unless the load succeeds.
bool loadJobState(StateReader &R, Job &J);

/// @}

} // namespace ecosched

#endif // ECOSCHED_SIM_TRACEIO_H
