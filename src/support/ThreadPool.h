//===-- support/ThreadPool.h - Shared worker-thread pool ---------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent worker-thread pool with a deterministic parallel-for
/// primitive for the embarrassingly parallel simulation loops (the
/// Section 5 study runs 25000 independent scheduling iterations per
/// series). The pool exists to eliminate per-chunk thread spawn/join
/// churn: workers are started lazily on the first parallel call and
/// reused for every call until the pool is destroyed.
///
/// Determinism contract (see docs/CONCURRENCY.md):
///  - parallelFor dispatches disjoint index ranges; the claim order is
///    nondeterministic but every index is executed exactly once.
///  - parallelMap writes result I to slot I of a pre-sized vector, so
///    the output order is independent of the execution order and the
///    caller can fold results in iteration order on its own thread.
///  - The first exception thrown by a body is captured and rethrown on
///    the calling thread after the range completes; remaining unclaimed
///    chunks are skipped.
///  - Nested parallelFor calls on the same pool run inline on the
///    submitting worker (no deadlock, no extra parallelism).
///
/// Adversarial scheduling (ScheduleFuzz): the determinism analysis gate
/// stresses the contract by claiming chunks in a seeded shuffled order
/// and injecting pseudo-random yields between claims. Only execution
/// *order and timing* change — coverage, result slots, and exception
/// capture are untouched, so every bitwise-determinism test must still
/// pass with fuzzing on. Enabled per pool via the ScheduleFuzz config
/// or globally via the ECOSCHED_SCHEDULE_FUZZ=<seed> environment knob.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_THREADPOOL_H
#define ECOSCHED_SUPPORT_THREADPOOL_H

#include "support/ThreadSafety.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace ecosched {

/// Persistent pool of `threadCount() - 1` worker threads; the calling
/// thread participates in every parallel call, so a pool of size N uses
/// exactly N threads while a call is in flight. A pool of size 1 never
/// starts workers and runs everything inline.
class ThreadPool {
public:
  /// Adversarial scheduling knob for the determinism gate: pooled calls
  /// claim chunks in a seeded shuffled order and inject deterministic
  /// pseudo-random yields, exercising schedules the FIFO claim order
  /// never produces. Results must be bitwise-unchanged (the pool's
  /// determinism contract does not depend on claim order); tests assert
  /// exactly that.
  struct ScheduleFuzz {
    bool Enabled = false;
    /// Seed of the shuffle/yield streams; every parallel call derives
    /// its own sub-stream so repeated calls see distinct schedules.
    uint64_t Seed = 0;
  };

  /// Creates a pool that will use \p ThreadCount threads (0 resolves to
  /// the hardware concurrency). Workers are not started until the first
  /// parallel call that can use them. Adversarial scheduling follows
  /// the ECOSCHED_SCHEDULE_FUZZ environment knob (scheduleFuzzFromEnv).
  explicit ThreadPool(size_t ThreadCount = 0);

  /// Creates a pool with an explicit adversarial-scheduling mode,
  /// ignoring the environment knob.
  ThreadPool(size_t ThreadCount, ScheduleFuzz Fuzz);

  /// Joins all workers. Must not run concurrently with a parallel call.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of threads this pool applies to a parallel call (including
  /// the calling thread).
  size_t threadCount() const { return Count; }

  /// Maps a requested thread count to the effective one: 0 resolves to
  /// the hardware concurrency (at least 1); anything else is taken
  /// verbatim. The single helper behind ExperimentConfig::Threads and
  /// every bench `--threads` flag.
  static size_t resolveThreadCount(size_t Requested);

  /// Reads the ECOSCHED_SCHEDULE_FUZZ environment knob: unset or empty
  /// disables fuzzing; any other value enables it with the decimal seed
  /// it parses to (unparseable text seeds 0). Lets CI replay the whole
  /// suite under adversarial schedules without touching call sites.
  static ScheduleFuzz scheduleFuzzFromEnv();

  /// The adversarial-scheduling mode this pool runs under.
  const ScheduleFuzz &scheduleFuzz() const { return Fuzz; }

  /// Runs \p Body(I) for every I in [\p First, \p Last). Work is
  /// claimed in chunks of \p Chunk indices via an atomic cursor; the
  /// calling thread participates. Blocks until the whole range is done
  /// and rethrows the first exception a body threw. \p Chunk must be
  /// positive.
  void parallelFor(size_t First, size_t Last, size_t Chunk,
                   const std::function<void(size_t)> &Body);

  /// Evaluates \p Body(I) for I in [0, \p Count) and returns the
  /// results as a vector with element I holding Body(I): the vector is
  /// pre-sized and each worker writes only its own slots, so the result
  /// order is independent of the thread count and callers keep the
  /// "fold in iteration order on the calling thread" determinism
  /// guarantee.
  template <typename R, typename Fn>
  std::vector<R> parallelMap(size_t Count, size_t Chunk, Fn &&Body) {
    std::vector<R> Out(Count);
    parallelFor(0, Count, Chunk, [&](size_t I) { Out[I] = Body(I); });
    return Out;
  }

private:
  /// Shared state of one parallelFor call. Queued helper tokens hold
  /// shared ownership so a stale token outliving the call is harmless.
  struct Call;

  void startWorkersLocked() ECOSCHED_REQUIRES(QueueMutex);
  void workerLoop();
  static void runCall(Call &C);

  size_t Count;
  ScheduleFuzz Fuzz;
  /// Per-call shuffle sub-stream selector; atomic because independent
  /// threads may issue parallel calls on one pool.
  std::atomic<uint64_t> FuzzCallIndex{0};
  Mutex QueueMutex;
  ConditionVariable WorkAvailable;
  std::deque<std::shared_ptr<Call>> Queue ECOSCHED_GUARDED_BY(QueueMutex);
  /// Grown only under QueueMutex (startWorkersLocked); joined lock-free
  /// in the destructor, after Stopping has drained every worker — no
  /// GUARDED_BY, the join loop is the documented exception.
  std::vector<std::thread> Workers;
  bool Started ECOSCHED_GUARDED_BY(QueueMutex) = false;
  bool Stopping ECOSCHED_GUARDED_BY(QueueMutex) = false;
};

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_THREADPOOL_H
