//===-- tools/archlint/ArchLint.cpp - Project architecture linter ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "ArchLint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>

using namespace ecosched::archlint;

namespace {

bool startsWith(const std::string &S, const std::string &Prefix) {
  return S.compare(0, Prefix.size(), Prefix) == 0;
}

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) != 0 || C == '_';
}

std::string trimLeft(const std::string &S) {
  size_t I = 0;
  while (I < S.size() && (S[I] == ' ' || S[I] == '\t'))
    ++I;
  return S.substr(I);
}

/// True for lines that are (almost certainly) pure comment: the rules
/// below must not fire on prose that merely mentions a banned token.
/// Block-comment interiors follow the project style of a leading '*' or
/// '///' so a prefix test is sufficient in practice.
bool isCommentLine(const std::string &Line) {
  const std::string T = trimLeft(Line);
  return startsWith(T, "//") || startsWith(T, "*") || startsWith(T, "/*");
}

/// Finds \p Token in \p Line at a position not preceded by an
/// identifier character, so `time(` does not match `runtime(` and
/// `assert(` does not match `static_assert(`. Returns npos if absent.
size_t findToken(const std::string &Line, const std::string &Token) {
  size_t Pos = 0;
  while ((Pos = Line.find(Token, Pos)) != std::string::npos) {
    if (Pos == 0 || !isIdentChar(Line[Pos - 1]))
      return Pos;
    Pos += Token.size();
  }
  return std::string::npos;
}

bool isCommentLine(const std::string &Line);

/// True when line \p Index (0-based) carries an `archlint-allow(<rule>)`
/// marker for \p Rule, or the contiguous comment block directly above it
/// does — suppressions are documented rationales, which usually take
/// more than one comment line.
bool isSuppressed(const std::vector<std::string> &Lines, size_t Index,
                  const std::string &Rule) {
  const std::string Marker = "archlint-allow(" + Rule + ")";
  if (Index >= Lines.size())
    return false;
  if (Lines[Index].find(Marker) != std::string::npos)
    return true;
  for (size_t I = Index; I > 0 && isCommentLine(Lines[I - 1]); --I)
    if (Lines[I - 1].find(Marker) != std::string::npos)
      return true;
  return false;
}

/// Splits "src/core/AlpSearch.h" into {"src", "core", "AlpSearch.h"}.
std::vector<std::string> pathComponents(const std::string &Path) {
  std::vector<std::string> Parts;
  std::string Current;
  for (const char C : Path) {
    if (C == '/') {
      if (!Current.empty())
        Parts.push_back(Current);
      Current.clear();
    } else {
      Current += C;
    }
  }
  if (!Current.empty())
    Parts.push_back(Current);
  return Parts;
}

/// The strict layer DAG: each src/ layer may include itself and the
/// layers listed here (its transitive dependencies). Absent keys (tests,
/// bench, examples) may include anything.
const std::map<std::string, std::vector<std::string>> &layerAllows() {
  static const std::map<std::string, std::vector<std::string>> Allows = {
      {"support", {"support"}},
      {"sim", {"sim", "support"}},
      {"core", {"core", "sim", "support"}},
      {"engine", {"engine", "core", "sim", "support"}},
  };
  return Allows;
}

/// Extracts the target of an `#include "..."` directive, or "" when the
/// line is not a quoted include.
std::string quotedIncludeTarget(const std::string &Line) {
  const std::string T = trimLeft(Line);
  if (!startsWith(T, "#"))
    return "";
  const std::string AfterHash = trimLeft(T.substr(1));
  if (!startsWith(AfterHash, "include"))
    return "";
  const size_t Open = AfterHash.find('"');
  if (Open == std::string::npos)
    return "";
  const size_t Close = AfterHash.find('"', Open + 1);
  if (Close == std::string::npos)
    return "";
  return AfterHash.substr(Open + 1, Close - Open - 1);
}

/// Canonical include guard for a header: ECOSCHED_ + the uppercased
/// path components after the top-level directory (the src/ prefix
/// itself is dropped; bench/ and examples/ keep their directory name),
/// non-alphanumerics removed, + _H. src/core/AlpSearch.h ->
/// ECOSCHED_CORE_ALPSEARCH_H; bench/ExperimentReport.h ->
/// ECOSCHED_BENCH_EXPERIMENTREPORT_H.
std::string canonicalGuard(const std::string &Path) {
  std::vector<std::string> Parts = pathComponents(Path);
  size_t First = 0;
  if (!Parts.empty() && Parts[0] == "src")
    First = 1;
  std::string Guard = "ECOSCHED";
  for (size_t I = First; I < Parts.size(); ++I) {
    std::string Component = Parts[I];
    if (I + 1 == Parts.size() && endsWith(Component, ".h"))
      Component = Component.substr(0, Component.size() - 2);
    Guard += '_';
    for (const char C : Component)
      if (std::isalnum(static_cast<unsigned char>(C)))
        Guard += static_cast<char>(
            std::toupper(static_cast<unsigned char>(C)));
  }
  return Guard + "_H";
}

struct BannedToken {
  const char *Token;
  const char *Rule;
  const char *Message;
};

/// Banned tokens in all of src/. Boundary-matched (see findToken).
constexpr std::array<BannedToken, 5> SrcWideBans = {{
    {"assert(", "raw-assert",
     "raw assert() in library code; use ECOSCHED_CHECK (src/support/Check.h)"},
    {"std::cout", "banned-io",
     "std::cout in library code; report through return values or stderr"},
    {"rand(", "nondeterminism",
     "rand() in library code; draw from support/Random.h RandomGenerator"},
    {"srand(", "nondeterminism",
     "srand() in library code; seed a support/Random.h RandomGenerator"},
    {"time(", "nondeterminism",
     "time() in library code; simulated time comes from engine/SimClock"},
}};

/// True for the layers under the detlint determinism contract: the code
/// whose behavior feeds scheduling results. Everything here must be
/// bitwise-reproducible for any thread count, so iteration-order,
/// pointer-order, and wall-clock hazards are banned at the token level
/// (docs/CONCURRENCY.md).
bool isDetLayer(const std::string &Layer) {
  return Layer == "core" || Layer == "engine" || Layer == "support";
}

/// The detlint token bans (result-affecting layers only).
constexpr std::array<BannedToken, 9> DetBans = {{
    {"std::unordered_map", "det-unordered-container",
     "std::unordered_map iterates in hash order; use std::map or a "
     "sorted vector so results never depend on hashing"},
    {"std::unordered_set", "det-unordered-container",
     "std::unordered_set iterates in hash order; use std::set or a "
     "sorted vector so results never depend on hashing"},
    {"<unordered_map>", "det-unordered-container",
     "<unordered_map> include in a determinism-contract layer; use an "
     "ordered container"},
    {"<unordered_set>", "det-unordered-container",
     "<unordered_set> include in a determinism-contract layer; use an "
     "ordered container"},
    {"std::this_thread::get_id", "det-thread-id",
     "thread identity in result-affecting code makes behavior depend on "
     "scheduling; key work by index, not by thread"},
    {"<chrono>", "det-wall-clock",
     "<chrono> include in a determinism-contract layer; simulated time "
     "comes from engine/SimClock, never the wall clock"},
    {"std::chrono", "det-wall-clock",
     "wall-clock time in result-affecting code; simulated time comes "
     "from engine/SimClock"},
    {"std::random_device", "det-random-device",
     "std::random_device is non-reproducible entropy; seed a "
     "support/Random.h RandomGenerator instead"},
    {"volatile", "det-volatile",
     "volatile is not a synchronization primitive and hides "
     "scheduling-dependent behavior; use std::atomic or a mutex"},
}};

/// Ordered associative containers whose *key* must not be a pointer:
/// iterating a pointer-keyed container walks allocation addresses, which
/// vary run to run. Value-position pointers are fine.
constexpr std::array<const char *, 4> PointerKeyContainers = {
    "std::map<", "std::set<", "std::multimap<", "std::multiset<"};

/// Comparator/hash templates whose argument must not be a pointer type.
constexpr std::array<const char *, 2> PointerKeyFunctors = {"std::less<",
                                                            "std::hash<"};

/// True when the first template argument starting right after
/// \p AnglePos (the position of '<') names a pointer type, e.g.
/// `std::map<const Window *, int>`. Line-local by design, like every
/// other token rule here.
bool firstTemplateArgIsPointer(const std::string &Line, size_t AnglePos) {
  int Depth = 1;
  for (size_t I = AnglePos + 1; I < Line.size(); ++I) {
    const char C = Line[I];
    if (C == '<') {
      ++Depth;
    } else if (C == '>') {
      if (--Depth == 0)
        return false;
    } else if (C == ',' && Depth == 1) {
      return false;
    } else if (C == '*' && Depth == 1) {
      return true;
    }
  }
  return false;
}

/// Runs the det-pointer-key scan on one line: any ordered associative
/// container or ordering/hash functor instantiated with a pointer-typed
/// first template argument.
bool hasPointerKey(const std::string &Line) {
  for (const char *Token : PointerKeyContainers) {
    const std::string T(Token);
    const size_t Pos = findToken(Line, T);
    if (Pos != std::string::npos &&
        firstTemplateArgIsPointer(Line, Pos + T.size() - 1))
      return true;
  }
  for (const char *Token : PointerKeyFunctors) {
    const std::string T(Token);
    const size_t Pos = findToken(Line, T);
    if (Pos != std::string::npos &&
        firstTemplateArgIsPointer(Line, Pos + T.size() - 1))
      return true;
  }
  return false;
}

/// The two reviewed serialization boundaries: the only src/ files that
/// may open files directly. Everything else — snapshot writers
/// included — must route bytes through sim/TraceIO or
/// support/StateCodec so corrupt-input handling and the text formats
/// stay in one place (docs/PERSISTENCE.md). Other writers carry an
/// explicit archlint-allow(file-io) rationale at the call site.
bool isFileIoBoundary(const std::string &Path) {
  return Path == "src/sim/TraceIO.cpp" ||
         Path == "src/support/StateCodec.cpp";
}

/// Tokens of the file-io rule. fopen covers the repo's C-stream idiom;
/// the fstream tokens close the C++-stream escape hatch.
constexpr std::array<const char *, 5> FileIoTokens = {
    "fopen(", "std::ifstream", "std::ofstream", "std::fstream",
    "<fstream>"};

/// The deleted pre-PR-4 forwarding header; reintroducing it (or
/// including it) regresses the layering cleanup.
const char *const LegacyForwarderPath = "src/core/VirtualOrganization.h";

//===----------------------------------------------------------------------===//
// fplint: the epsilon-discipline rule family (support/Units.h)
//===----------------------------------------------------------------------===//

/// True for the layers under the epsilon-discipline contract: the code
/// that makes boundary decisions on times and prices.
bool isFpLayer(const std::string &Layer) {
  return Layer == "sim" || Layer == "core" || Layer == "engine";
}

/// The two files exempt from the fplint family: the storage bridge
/// (raw double fields are its trace/codec job) and the tolerance
/// convention itself.
bool isFpExempt(const std::string &Path) {
  return Path == "src/sim/Slot.h" || Path == "src/support/Units.h";
}

/// Camel-case words that mark an identifier as a time/price quantity.
constexpr std::array<const char *, 12> DimensionWords = {
    "Start", "End",    "Time",   "Deadline", "Horizon", "Price",
    "Cost",  "Budget", "Income", "Runtime",  "Span",    "Money"};

/// Camel-case words that mark an identifier as a count/index/weight —
/// dimensionless even when a dimension word is embedded (StartIndex and
/// EndPos are offsets into containers, CostCells counts DP grid cells,
/// CostWeight is a scalarization weight — none of them instants or
/// prices).
constexpr std::array<const char *, 10> CountingWords = {
    "Index", "Idx", "Count", "Num",   "Id",
    "No",    "Pos", "Size",  "Cells", "Weight"};

/// Parameter-name words of the fp-double-api rule (the subset of
/// DimensionWords the Units types actually model at API boundaries).
constexpr std::array<const char *, 6> ApiDimensionWords = {
    "Time", "Start", "End", "Price", "Budget", "Deadline"};

/// True when \p Word occurs in \p Token as a camel-case word: at any
/// position for the capitalized spelling, or at an identifier start
/// (token begin or after a non-identifier char) for the
/// first-letter-lowercased spelling (accessor names: startTime,
/// deadline()). In both cases the match must not be followed by a
/// lowercase letter, so Timer/Spand/endsWith do not match
/// Time/Span/end.
bool hasCamelWord(const std::string &Token, const std::string &Word) {
  const auto BoundaryAfter = [&](size_t Pos) {
    const size_t After = Pos + Word.size();
    return After >= Token.size() ||
           std::islower(static_cast<unsigned char>(Token[After])) == 0;
  };
  size_t Pos = 0;
  while ((Pos = Token.find(Word, Pos)) != std::string::npos) {
    if (BoundaryAfter(Pos))
      return true;
    ++Pos;
  }
  std::string Lower = Word;
  Lower[0] =
      static_cast<char>(std::tolower(static_cast<unsigned char>(Lower[0])));
  Pos = 0;
  while ((Pos = Token.find(Lower, Pos)) != std::string::npos) {
    if ((Pos == 0 || !isIdentChar(Token[Pos - 1])) && BoundaryAfter(Pos))
      return true;
    ++Pos;
  }
  return false;
}

/// True when an operand token names a quantity: a Units .value() escape
/// hatch, or a dimension camel word without a counting word.
bool isDimensionedOperand(const std::string &Token) {
  if (Token.find(".value()") != std::string::npos ||
      Token.find("->value()") != std::string::npos)
    return true;
  bool Dim = false;
  for (const char *W : DimensionWords)
    if (hasCamelWord(Token, W)) {
      Dim = true;
      break;
    }
  if (!Dim)
    return false;
  for (const char *W : CountingWords)
    if (hasCamelWord(Token, W))
      return false;
  return true;
}

/// True when \p Token is a literal zero ("0", "0.0", "0.0)", ...).
/// Sign and emptiness tests against the literal zero are
/// IEEE-754-exact and stay raw on purpose (e.g. SimClock's
/// constructor contract), so they are exempt from fp-raw-compare.
bool isZeroLiteral(std::string Token) {
  while (!Token.empty() && (Token.front() == '(' || Token.front() == '+'))
    Token.erase(Token.begin());
  while (!Token.empty() &&
         (Token.back() == ')' || Token.back() == ';' || Token.back() == ',' ||
          Token.back() == '{'))
    Token.pop_back();
  if (Token.empty())
    return false;
  char *End = nullptr;
  const double V = std::strtod(Token.c_str(), &End);
  if (End == Token.c_str())
    return false;
  for (const char *P = End; *P != 0; ++P)
    if (*P != 'f' && *P != 'F' && *P != 'u' && *P != 'U' && *P != 'l' &&
        *P != 'L')
      return false;
  return V == 0.0;
}

/// The whitespace-delimited token ending at \p End (exclusive).
std::string tokenEndingAt(const std::string &Line, size_t End) {
  size_t B = End;
  while (B > 0 && Line[B - 1] != ' ')
    --B;
  return Line.substr(B, End - B);
}

/// The whitespace-delimited token starting at \p Begin.
std::string tokenStartingAt(const std::string &Line, size_t Begin) {
  size_t E = Begin;
  while (E < Line.size() && Line[E] != ' ')
    ++E;
  return Line.substr(Begin, E - Begin);
}

/// Replaces the interiors of double-quoted string literals with
/// underscores so the fplint scans never fire on prose inside
/// diagnostics (e.g. a CHECK message saying "end > start"). Handles
/// backslash escapes; line-local like every rule here.
std::string maskStringLiterals(const std::string &Line) {
  std::string Out = Line;
  bool InString = false;
  for (size_t I = 0; I < Out.size(); ++I) {
    if (InString) {
      if (Out[I] == '\\') {
        Out[I] = '_';
        if (I + 1 < Out.size())
          Out[++I] = '_';
      } else if (Out[I] == '"') {
        InString = false;
      } else {
        Out[I] = '_';
      }
    } else if (Out[I] == '"') {
      InString = true;
    }
  }
  return Out;
}

/// One spaced relational operator on a line, located by its operands.
struct RawRelational {
  size_t OperandBefore; ///< End (exclusive) of the left operand.
  size_t OperandAfter;  ///< Begin of the right operand.
};

/// Positions of the spaced relational operators " < ", " <= ", " > ",
/// " >= " on \p Line. The project is clang-formatted, so binary
/// operators are space-delimited and templates, shifts, and arrows
/// never match. Equality operators are excluded on purpose: identity
/// checks and iterator-end tests are not boundary decisions.
std::vector<RawRelational> rawRelationals(const std::string &Line) {
  std::vector<RawRelational> Out;
  for (size_t I = 1; I + 1 < Line.size(); ++I) {
    if ((Line[I] != '<' && Line[I] != '>') || Line[I - 1] != ' ')
      continue;
    size_t After = I + 1;
    if (After < Line.size() && Line[After] == '=')
      ++After;
    if (After >= Line.size() || Line[After] != ' ')
      continue;
    Out.push_back({I - 1, After + 1});
  }
  return Out;
}

/// Scans a header line for a `double <Name>` parameter (followed, after
/// an optional default argument, by ',' or ')') whose name embeds an
/// ApiDimensionWords word. Fields and locals (terminated by ';') never
/// match. On success stores the offending name in \p Name.
bool findDoubleApiParam(const std::string &Line, std::string &Name) {
  size_t Pos = 0;
  while ((Pos = Line.find("double ", Pos)) != std::string::npos) {
    if (Pos > 0 && isIdentChar(Line[Pos - 1])) {
      Pos += 7;
      continue;
    }
    size_t B = Pos + 7;
    while (B < Line.size() && Line[B] == ' ')
      ++B;
    size_t E = B;
    while (E < Line.size() && isIdentChar(Line[E]))
      ++E;
    const std::string Ident = Line.substr(B, E - B);
    Pos = E;
    if (Ident.empty())
      continue;
    size_t C = E;
    while (C < Line.size() && Line[C] == ' ')
      ++C;
    bool Param = false;
    if (C < Line.size() && (Line[C] == ',' || Line[C] == ')')) {
      Param = true;
    } else if (C < Line.size() && Line[C] == '=') {
      // Default argument vs member initializer: a parameter's
      // initializer runs into an unbalanced ',' or ')' before any ';'
      // (parens inside the initializer expression are balanced).
      int Depth = 0;
      for (size_t K = C + 1; K < Line.size(); ++K) {
        if (Line[K] == ';')
          break;
        if (Line[K] == '(') {
          ++Depth;
        } else if (Line[K] == ')') {
          if (Depth == 0) {
            Param = true;
            break;
          }
          --Depth;
        } else if (Line[K] == ',' && Depth == 0) {
          Param = true;
          break;
        }
      }
    }
    if (!Param)
      continue;
    for (const char *W : ApiDimensionWords)
      if (hasCamelWord(Ident, W)) {
        Name = Ident;
        return true;
      }
  }
  return false;
}

void lintOneFile(const SourceFile &F, std::vector<Finding> &Out) {
  const std::vector<std::string> Parts = pathComponents(F.Path);
  if (Parts.empty())
    return;
  const bool InSrc = Parts[0] == "src";
  const std::string Layer = (InSrc && Parts.size() >= 3) ? Parts[1] : "";
  const bool IsHeader = endsWith(F.Path, ".h");
  const bool GuardedTree =
      InSrc || Parts[0] == "bench" || Parts[0] == "examples";

  const auto &Allows = layerAllows();
  const auto AllowIt = Allows.find(Layer);

  // Every finding is emitted, suppressed or not; the flag lets the JSON
  // consumer audit allow-listed sites while text output and the exit
  // status consider only unsuppressed findings.
  const auto Emit = [&](size_t Anchor, size_t LineNo, const std::string &Rule,
                        const std::string &Message) {
    Out.push_back(
        {F.Path, LineNo, Rule, Message, isSuppressed(F.Lines, Anchor, Rule)});
  };

  bool SawIfndef = false, SawDefine = false, IfndefFlagged = false;
  const std::string Guard = canonicalGuard(F.Path);

  // no-legacy-forwarder: the deprecated core/VirtualOrganization.h
  // forwarder was deleted after its one-release grace period; the path
  // itself must not come back.
  if (F.Path == LegacyForwarderPath)
    Emit(0, 0, "no-legacy-forwarder",
         "the deprecated forwarding header was removed; the VO "
         "facade lives at src/engine/VirtualOrganization.h");

  for (size_t I = 0; I < F.Lines.size(); ++I) {
    const std::string &Line = F.Lines[I];
    const size_t LineNo = I + 1;

    // pragma-once: the repo convention is canonical include guards.
    if (trimLeft(Line).rfind("#pragma once", 0) == 0)
      Emit(I, LineNo, "pragma-once",
           "#pragma once; use the canonical include guard " + Guard);

    // layer-dag: quoted includes from a src/ layer must stay within the
    // layer's allowed dependency set.
    const std::string Target = quotedIncludeTarget(Line);
    if (Target == "core/VirtualOrganization.h")
      Emit(I, LineNo, "no-legacy-forwarder",
           "core/VirtualOrganization.h was removed; include "
           "engine/VirtualOrganization.h");
    if (!Target.empty() && AllowIt != Allows.end()) {
      const std::vector<std::string> TargetParts = pathComponents(Target);
      if (!TargetParts.empty() && Allows.count(TargetParts[0]) != 0) {
        const std::vector<std::string> &Allowed = AllowIt->second;
        if (std::find(Allowed.begin(), Allowed.end(), TargetParts[0]) ==
            Allowed.end())
          Emit(I, LineNo, "layer-dag",
               "layer '" + Layer + "' must not include '" + Target +
                   "' (allowed: engine -> core -> sim -> support)");
      }
    }

    if (isCommentLine(Line))
      continue;

    // Banned tokens in library code.
    if (InSrc) {
      for (const BannedToken &Ban : SrcWideBans)
        if (findToken(Line, Ban.Token) != std::string::npos)
          Emit(I, LineNo, Ban.Rule, Ban.Message);
      // file-io: direct filesystem access outside the serialization
      // boundaries.
      if (!isFileIoBoundary(F.Path))
        for (const char *Token : FileIoTokens)
          if (findToken(Line, Token) != std::string::npos)
            Emit(I, LineNo, "file-io",
                 "direct file I/O in library code; route through "
                 "sim/TraceIO or support/StateCodec (or carry an "
                 "archlint-allow(file-io) rationale)");
      if ((Layer == "core" || Layer == "engine") &&
          Line.find("std::function") != std::string::npos)
        Emit(I, LineNo, "std-function",
             "std::function in a hot layer; pass support/FunctionRef.h "
             "FunctionRef for non-owning callback parameters (owning "
             "storage may carry an archlint-allow entry)");
      // detlint: the determinism rule family over the result-affecting
      // layers (docs/STATIC_ANALYSIS.md).
      if (isDetLayer(Layer)) {
        for (const BannedToken &Ban : DetBans)
          if (findToken(Line, Ban.Token) != std::string::npos)
            Emit(I, LineNo, Ban.Rule, Ban.Message);
        if (hasPointerKey(Line))
          Emit(I, LineNo, "det-pointer-key",
               "pointer-typed ordering/hash key: iteration walks "
               "allocation addresses, which vary run to run; key by a "
               "stable id or index instead");
      }
      // fplint: the epsilon-discipline rule family over the
      // quantity-bearing layers (support/Units.h).
      if (isFpLayer(Layer) && !isFpExempt(F.Path)) {
        const std::string Masked = maskStringLiterals(Line);
        for (const RawRelational &R : rawRelationals(Masked)) {
          const std::string LHS = tokenEndingAt(Masked, R.OperandBefore);
          const std::string RHS = tokenStartingAt(Masked, R.OperandAfter);
          if (!isDimensionedOperand(LHS) && !isDimensionedOperand(RHS))
            continue;
          if (isZeroLiteral(LHS) || isZeroLiteral(RHS))
            continue;
          Emit(I, LineNo, "fp-raw-compare",
               "raw relational on a time/price quantity ('" + LHS + "' vs '" +
                   RHS +
                   "'); decide through approxEq/Le/Ge/Lt/Gt or the named "
                   "exactLess/exactEq escapes (support/Units.h)");
        }
        if (!rawRelationals(Masked).empty() &&
            (findToken(Masked, "TimeEpsilon") != std::string::npos ||
             Masked.find("1e-9") != std::string::npos ||
             Masked.find("1E-9") != std::string::npos))
          Emit(I, LineNo, "fp-raw-epsilon",
               "hand-rolled epsilon composed with a raw comparison; use "
               "the approx helpers so the tolerance convention stays in "
               "one place (support/Units.h)");
        std::string ParamName;
        if (IsHeader && findDoubleApiParam(Masked, ParamName))
          Emit(I, LineNo, "fp-double-api",
               "public signature takes raw double for '" + ParamName +
                   "'; take the Units strong type (TimePoint/Duration/"
                   "Money/Price) so callers cannot pass a bare number");
      }
    }

    // header-guard bookkeeping.
    if (IsHeader && GuardedTree) {
      const std::string T = trimLeft(Line);
      if (!SawIfndef && startsWith(T, "#ifndef")) {
        SawIfndef = true;
        if (trimLeft(T.substr(7)) != Guard) {
          IfndefFlagged = true;
          Emit(I, LineNo, "header-guard",
               "include guard '" + trimLeft(T.substr(7)) +
                   "' does not match the canonical " + Guard);
        }
      } else if (SawIfndef && !SawDefine && startsWith(T, "#define")) {
        SawDefine = true;
        // A wrong #ifndef was already reported; flagging the matching
        // #define again would double-count the same defect.
        if (!IfndefFlagged && trimLeft(T.substr(7)) != Guard)
          Emit(I, LineNo, "header-guard",
               "guard #define '" + trimLeft(T.substr(7)) +
                   "' does not match the canonical " + Guard);
      }
    }
  }

  if (IsHeader && GuardedTree && (!SawIfndef || !SawDefine))
    Emit(0, 0, "header-guard",
         "missing #ifndef/#define include guard " + Guard);
}

/// test-registration: every tests/**/*.cpp must be named (path relative
/// to tests/) in some CMakeLists.txt under tests/.
void lintTestRegistration(const std::vector<SourceFile> &Files,
                          std::vector<Finding> &Out) {
  std::string Registrations;
  for (const SourceFile &F : Files) {
    if (!startsWith(F.Path, "tests/") || !endsWith(F.Path, "CMakeLists.txt"))
      continue;
    for (const std::string &Line : F.Lines) {
      Registrations += Line;
      Registrations += '\n';
    }
  }
  for (const SourceFile &F : Files) {
    if (!startsWith(F.Path, "tests/") || !endsWith(F.Path, ".cpp"))
      continue;
    const std::string Relative = F.Path.substr(std::string("tests/").size());
    if (Registrations.find(Relative) == std::string::npos)
      Out.push_back({F.Path, 0, "test-registration",
                     "not registered in any tests/ CMakeLists.txt; the "
                     "file never builds or runs",
                     isSuppressed(F.Lines, 0, "test-registration")});
  }
}

} // namespace

std::vector<Finding>
ecosched::archlint::lintFiles(const std::vector<SourceFile> &Files) {
  std::vector<Finding> Out;
  for (const SourceFile &F : Files)
    if (endsWith(F.Path, ".h") || endsWith(F.Path, ".cpp"))
      lintOneFile(F, Out);
  lintTestRegistration(Files, Out);
  std::sort(Out.begin(), Out.end(), [](const Finding &A, const Finding &B) {
    if (A.Path != B.Path)
      return A.Path < B.Path;
    if (A.Line != B.Line)
      return A.Line < B.Line;
    return A.Rule < B.Rule;
  });
  return Out;
}

std::string ecosched::archlint::formatFinding(const Finding &F) {
  std::ostringstream OS;
  OS << F.Path << ':' << F.Line << ": [" << F.Rule << "] " << F.Message;
  return OS.str();
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (const char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  return Out;
}

} // namespace

std::string ecosched::archlint::formatFindingsJson(
    const std::vector<Finding> &Findings) {
  std::ostringstream OS;
  OS << '[';
  for (size_t I = 0; I < Findings.size(); ++I) {
    const Finding &F = Findings[I];
    OS << (I == 0 ? "\n" : ",\n") << "  {\"file\": \"" << jsonEscape(F.Path)
       << "\", \"line\": " << F.Line << ", \"rule\": \"" << jsonEscape(F.Rule)
       << "\", \"message\": \"" << jsonEscape(F.Message)
       << "\", \"suppressed\": " << (F.Suppressed ? "true" : "false") << '}';
  }
  OS << "\n]\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Self test
//===----------------------------------------------------------------------===//

namespace {

struct SelfTestCase {
  const char *Name;
  std::vector<SourceFile> Files;
  /// Expected findings as rule names, order-insensitive.
  std::vector<std::string> ExpectedRules;
};

SourceFile makeFile(const char *Path,
                    std::initializer_list<const char *> Lines) {
  SourceFile F;
  F.Path = Path;
  for (const char *L : Lines)
    F.Lines.emplace_back(L);
  return F;
}

std::vector<SelfTestCase> selfTestCases() {
  std::vector<SelfTestCase> Cases;

  Cases.push_back({"upward include sim -> core is flagged",
                   {makeFile("src/sim/Bad.cpp",
                             {"#include \"core/Optimizer.h\""})},
                   {"layer-dag"}});
  Cases.push_back({"upward include core -> engine is flagged",
                   {makeFile("src/core/Bad.cpp",
                             {"#include \"engine/SimClock.h\""})},
                   {"layer-dag"}});
  Cases.push_back({"downward include engine -> support is allowed",
                   {makeFile("src/engine/Ok.cpp",
                             {"#include \"support/Check.h\""})},
                   {}});
  Cases.push_back({"suppressed upward include is allowed",
                   {makeFile("src/core/Fwd.h",
                             {"#ifndef ECOSCHED_CORE_FWD_H",
                              "#define ECOSCHED_CORE_FWD_H",
                              "// archlint-allow(layer-dag): forwarder",
                              "#include \"engine/SimClock.h\"", "#endif"})},
                   {}});
  Cases.push_back({"tests may include any layer",
                   {makeFile("tests/x/T.cpp",
                             {"#include \"engine/SimClock.h\""}),
                    makeFile("tests/CMakeLists.txt", {"x/T.cpp"})},
                   {}});

  Cases.push_back({"raw assert is flagged, static_assert is not",
                   {makeFile("src/sim/A.cpp",
                             {"assert(X);", "static_assert(true);"})},
                   {"raw-assert"}});
  Cases.push_back({"banned tokens in comments are ignored",
                   {makeFile("src/sim/B.cpp",
                             {"// assert( and std::cout and rand( here"})},
                   {}});
  Cases.push_back({"std::cout and rand and time are flagged",
                   {makeFile("src/sim/C.cpp",
                             {"std::cout << 1;", "int X = rand();",
                              "long T = time(nullptr);"})},
                   {"banned-io", "nondeterminism", "nondeterminism"}});
  Cases.push_back({"runtime( does not match the time( ban",
                   {makeFile("src/sim/D.cpp",
                             {"double R = S.runtimeFor(V);",
                              "double Q = startTime();"})},
                   {}});
  Cases.push_back({"std::function flagged in core, allowed in sim",
                   {makeFile("src/core/E.cpp", {"std::function<void()> F;"}),
                    makeFile("src/sim/F.cpp", {"std::function<void()> F;"})},
                   {"std-function"}});
  Cases.push_back({"std::function with an allow entry passes",
                   {makeFile("src/core/G.cpp",
                             {"// archlint-allow(std-function): owning",
                              "std::function<void()> F;"})},
                   {}});
  Cases.push_back({"allow marker anywhere in the comment block above",
                   {makeFile("src/core/G2.cpp",
                             {"// archlint-allow(std-function): owning",
                              "// storage, documented rationale spans",
                              "// several comment lines.",
                              "std::function<void()> F;"})},
                   {}});
  Cases.push_back({"allow marker does not leak past non-comment lines",
                   {makeFile("src/core/G3.cpp",
                             {"// archlint-allow(std-function): owning",
                              "std::function<void()> F;", "int X;",
                              "std::function<void()> G;"})},
                   {"std-function"}});

  Cases.push_back({"file I/O flagged in engine, allowed at the boundaries",
                   {makeFile("src/engine/IO1.cpp",
                             {"std::FILE *F = std::fopen(P, \"w\");"}),
                    makeFile("src/support/StateCodec.cpp",
                             {"std::FILE *F = std::fopen(P, \"w\");"}),
                    makeFile("src/sim/TraceIO.cpp",
                             {"std::ifstream In(Path);"})},
                   {"file-io"}});
  Cases.push_back({"fstream tokens are flagged as file I/O",
                   {makeFile("src/core/IO2.cpp",
                             {"#include <fstream>",
                              "std::ofstream Out(Path);"})},
                   {"file-io", "file-io"}});
  Cases.push_back({"file I/O with an allow rationale passes",
                   {makeFile("src/support/IO3.cpp",
                             {"// archlint-allow(file-io): chart output",
                              "std::FILE *F = std::fopen(P, \"w\");"})},
                   {}});

  Cases.push_back({"wrong include guard is flagged",
                   {makeFile("src/sim/H.h",
                             {"#ifndef WRONG_H", "#define WRONG_H",
                              "#endif"})},
                   {"header-guard"}});
  Cases.push_back({"missing include guard is flagged",
                   {makeFile("src/sim/I.h", {"int X;"})},
                   {"header-guard"}});
  Cases.push_back({"pragma once is flagged",
                   {makeFile("src/sim/J.h", {"#pragma once", "int X;"})},
                   {"header-guard", "pragma-once"}});
  Cases.push_back({"canonical guard passes",
                   {makeFile("src/sim/K.h",
                             {"#ifndef ECOSCHED_SIM_K_H",
                              "#define ECOSCHED_SIM_K_H", "#endif"})},
                   {}});
  Cases.push_back({"bench header keeps its directory in the guard",
                   {makeFile("bench/L.h",
                             {"#ifndef ECOSCHED_BENCH_L_H",
                              "#define ECOSCHED_BENCH_L_H", "#endif"})},
                   {}});

  Cases.push_back({"unordered container flagged in core, allowed in sim",
                   {makeFile("src/core/N1.cpp",
                             {"std::unordered_map<int, int> M;"}),
                    makeFile("src/sim/N1.cpp",
                             {"std::unordered_set<int> S;"})},
                   {"det-unordered-container"}});
  Cases.push_back({"unordered include flagged in engine",
                   {makeFile("src/engine/N2.cpp",
                             {"#include <unordered_set>"})},
                   {"det-unordered-container"}});
  Cases.push_back({"suppressed unordered container with rationale passes",
                   {makeFile("src/core/N3.cpp",
                             {"// archlint-allow(det-unordered-container):",
                              "// scratch set, drained before any fold.",
                              "std::unordered_set<int> Scratch;"})},
                   {}});
  Cases.push_back({"pointer-keyed map and set are flagged in core",
                   {makeFile("src/core/N4.cpp",
                             {"std::map<const Window *, int> ByPtr;",
                              "std::set<Slot *> Seen;"})},
                   {"det-pointer-key", "det-pointer-key"}});
  Cases.push_back({"pointer in value position is allowed",
                   {makeFile("src/core/N5.cpp",
                             {"std::map<int, const Window *> ById;",
                              "std::set<std::pair<int, int>> Keys;"})},
                   {}});
  Cases.push_back({"pointer-typed std::less and std::hash are flagged",
                   {makeFile("src/engine/N6.cpp",
                             {"std::less<Slot *> Cmp;",
                              "std::hash<const Job *> H;"})},
                   {"det-pointer-key", "det-pointer-key"}});
  Cases.push_back({"thread id and random_device are flagged in support",
                   {makeFile("src/support/N7.cpp",
                             {"auto Id = std::this_thread::get_id();",
                              "std::random_device Dev;"})},
                   {"det-thread-id", "det-random-device"}});
  Cases.push_back({"chrono include and clock use are flagged in core",
                   {makeFile("src/core/N8.cpp",
                             {"#include <chrono>",
                              "auto T = std::chrono::steady_clock::now();"})},
                   {"det-wall-clock", "det-wall-clock"}});
  Cases.push_back({"volatile flagged in engine, ignored in comments",
                   {makeFile("src/engine/N9.cpp",
                             {"volatile int Spin = 0;",
                              "// volatile in prose stays silent"})},
                   {"det-volatile"}});
  Cases.push_back({"det rules do not fire outside the det layers",
                   {makeFile("src/sim/N10.cpp",
                             {"#include <chrono>", "volatile int X;",
                              "std::map<int *, int> M;"}),
                    makeFile("tests/x/N10.cpp",
                             {"std::unordered_map<int, int> M;"}),
                    makeFile("tests/CMakeLists.txt", {"x/N10.cpp"})},
                   {}});

  Cases.push_back({"reintroduced legacy forwarder path is flagged",
                   {makeFile("src/core/VirtualOrganization.h",
                             {"#ifndef ECOSCHED_CORE_VIRTUALORGANIZATION_H",
                              "#define ECOSCHED_CORE_VIRTUALORGANIZATION_H",
                              "#endif"})},
                   {"no-legacy-forwarder"}});
  Cases.push_back({"include of the legacy forwarder is flagged",
                   {makeFile("src/engine/O1.cpp",
                             {"#include \"core/VirtualOrganization.h\""})},
                   {"no-legacy-forwarder"}});
  Cases.push_back({"engine facade include passes the forwarder rule",
                   {makeFile("src/engine/O2.cpp",
                             {"#include \"engine/VirtualOrganization.h\""})},
                   {}});

  Cases.push_back({"unregistered test file is flagged",
                   {makeFile("tests/x/Orphan.cpp", {"int X;"}),
                    makeFile("tests/CMakeLists.txt", {"x/Other.cpp"})},
                   {"test-registration"}});
  Cases.push_back({"registered test file passes",
                   {makeFile("tests/x/T.cpp", {"int X;"}),
                    makeFile("tests/CMakeLists.txt",
                             {"ecosched_add_test(x_tests", "  x/T.cpp", ")"})},
                   {}});

  Cases.push_back({"raw relational on dimensioned operands is flagged",
                   {makeFile("src/core/FP1.cpp",
                             {"if (StartTime < Request.Deadline)",
                              "  return false;"})},
                   {"fp-raw-compare"}});
  Cases.push_back({"raw relational on a .value() escape is flagged",
                   {makeFile("src/engine/FP2.cpp",
                             {"if (Clock.now().value() >= Limit)",
                              "  return false;"})},
                   {"fp-raw-compare"}});
  Cases.push_back({"literal-zero sign tests stay exempt",
                   {makeFile("src/engine/FP3.cpp",
                             {"if (IterationPeriod > 0.0)",
                              "if (0.0 < HorizonLength)"})},
                   {}});
  Cases.push_back({"counting identifiers embedding a dimension word pass",
                   {makeFile("src/core/FP4.cpp",
                             {"for (size_t I = StartIndex; I < EndIndex; ++I)",
                              "if (LineNo > EndPos)"})},
                   {}});
  Cases.push_back({"undimensioned relationals and equality tests pass",
                   {makeFile("src/core/FP5.cpp",
                             {"if (A < B)", "if (It != List.end())",
                              "if (Lo.Start == Hi.Start)"})},
                   {}});
  Cases.push_back({"approx helpers and exact escapes pass",
                   {makeFile("src/core/FP6.cpp",
                             {"if (approxLe(StartTime, Deadline))",
                              "return exactLess(A.startTime(), B.startTime());",
                              "return approxGe(End - Cut, Needed, TimeEpsilon);"})},
                   {}});
  Cases.push_back({"the storage bridge Slot.h is exempt from fplint",
                   {makeFile("src/sim/Slot.h",
                             {"#ifndef ECOSCHED_SIM_SLOT_H",
                              "#define ECOSCHED_SIM_SLOT_H",
                              "bool Ok = Start < End;", "#endif"})},
                   {}});
  Cases.push_back({"fplint does not fire outside sim/core/engine",
                   {makeFile("src/support/FP7.cpp",
                             {"if (StartTime < Deadline)"}),
                    makeFile("tests/x/FP7.cpp",
                             {"if (StartTime < Deadline)"}),
                    makeFile("tests/CMakeLists.txt", {"x/FP7.cpp"})},
                   {}});
  Cases.push_back({"relational prose inside string literals passes",
                   {makeFile("src/sim/FP16.cpp",
                             {"ECOSCHED_CHECK(Ok, \"end > start on {}\", Id);"})},
                   {}});
  Cases.push_back({"suppressed raw compare with rationale passes",
                   {makeFile("src/sim/FP8.cpp",
                             {"// archlint-allow(fp-raw-compare): codec",
                              "// round-trip needs the raw bits.",
                              "if (Loaded.Start < Saved.Start)"})},
                   {}});
  Cases.push_back({"hand-rolled epsilon with a raw comparison is flagged",
                   {makeFile("src/core/FP9.cpp",
                             {"if (Piece.End < Deadline + TimeEpsilon)"})},
                   {"fp-raw-compare", "fp-raw-epsilon"}});
  Cases.push_back({"literal 1e-9 epsilon composition is flagged",
                   {makeFile("src/core/FP10.cpp",
                             {"if (X < Y + 1e-9)"})},
                   {"fp-raw-epsilon"}});
  Cases.push_back({"epsilon as an approx argument passes",
                   {makeFile("src/core/FP11.cpp",
                             {"return approxLe(End, Deadline, TimeEpsilon);"})},
                   {}});
  Cases.push_back({"raw double dimension parameter in a header is flagged",
                   {makeFile("src/core/FP12.h",
                             {"#ifndef ECOSCHED_CORE_FP12_H",
                              "#define ECOSCHED_CORE_FP12_H",
                              "bool schedule(double Deadline, int Count);",
                              "#endif"})},
                   {"fp-double-api"}});
  Cases.push_back({"typed parameters and double fields pass fp-double-api",
                   {makeFile("src/core/FP13.h",
                             {"#ifndef ECOSCHED_CORE_FP13_H",
                              "#define ECOSCHED_CORE_FP13_H",
                              "bool schedule(TimePoint Deadline);",
                              "void pace(double Volume, double Factor);",
                              "double Deadline = 0.0;", "#endif"})},
                   {}});
  Cases.push_back({"fields with call initializers are not parameters",
                   {makeFile("src/sim/FP17.h",
                             {"#ifndef ECOSCHED_SIM_FP17_H",
                              "#define ECOSCHED_SIM_FP17_H",
                              "double Deadline = std::numeric_limits<"
                              "double>::infinity();",
                              "#endif"})},
                   {}});
  Cases.push_back({"dimensionless weights and cell counts pass",
                   {makeFile("src/core/FP18.cpp",
                             {"if (P.CostWeight <= 1.0)",
                              "if (NeededCostCells[A] > Zc)"})},
                   {}});
  Cases.push_back({"fp-double-api is a signature rule, not a .cpp rule",
                   {makeFile("src/core/FP14.cpp",
                             {"bool schedule(double Deadline) { return true; }"})},
                   {}});
  Cases.push_back({"suppressed fp-double-api boundary passes",
                   {makeFile("src/sim/FP15.h",
                             {"#ifndef ECOSCHED_SIM_FP15_H",
                              "#define ECOSCHED_SIM_FP15_H",
                              "// archlint-allow(fp-double-api): construction",
                              "// boundary, raw doubles by design.",
                              "int addNode(double UnitPrice);", "#endif"})},
                   {}});

  return Cases;
}

} // namespace

int ecosched::archlint::runSelfTest() {
  int Failures = 0;
  for (const SelfTestCase &Case : selfTestCases()) {
    std::vector<Finding> Findings = lintFiles(Case.Files);
    std::vector<std::string> Got;
    Got.reserve(Findings.size());
    for (const Finding &F : Findings)
      if (!F.Suppressed)
        Got.push_back(F.Rule);
    std::vector<std::string> Want = Case.ExpectedRules;
    std::sort(Got.begin(), Got.end());
    std::sort(Want.begin(), Want.end());
    if (Got != Want) {
      ++Failures;
      std::cerr << "self-test FAILED: " << Case.Name << "\n  expected:";
      for (const std::string &R : Want)
        std::cerr << ' ' << R;
      std::cerr << "\n  got:";
      for (const Finding &F : Findings)
        std::cerr << "\n    " << formatFinding(F);
      std::cerr << '\n';
    }
  }
  return Failures;
}
