//===-- tests/property/BatchSearchPropertyTest.cpp - One-pass invariants --===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// Property tests of the one-pass whole-batch scheduler on randomized
/// Section 5 workloads: every placed window satisfies its request, the
/// assignment is pairwise disjoint and carvable out of the original
/// vacancy, and the pass never places fewer jobs than the sequential
/// scheme's first sweep would cover.
///
//===----------------------------------------------------------------------===//

#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "core/BatchSearch.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"

#include <gtest/gtest.h>

#include <set>

using namespace ecosched;

class BatchSearchPropertyTest
    : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override {
    RandomGenerator Rng(GetParam());
    List = SlotGenerator().generate(Rng);
    Jobs = JobGenerator().generate(Rng);
  }

  SlotList List;
  Batch Jobs;
};

TEST_P(BatchSearchPropertyTest, PlacedWindowsSatisfyRequests) {
  OnePassBatchScheduler Scheduler;
  const BatchAssignment A = Scheduler.assign(List, Jobs);
  ASSERT_EQ(A.PerJob.size(), Jobs.size());
  for (size_t J = 0; J < Jobs.size(); ++J) {
    if (!A.PerJob[J])
      continue;
    const Window &W = *A.PerJob[J];
    const ResourceRequest &Req = Jobs[J].Request;
    ASSERT_EQ(W.size(), static_cast<size_t>(Req.NodeCount));
    EXPECT_LE(W.totalCost().value(), Req.budget().value() + 1e-6);
    std::set<int> Nodes;
    for (const WindowSlot &M : W) {
      EXPECT_TRUE(Nodes.insert(M.Source.NodeId).second);
      EXPECT_GE(M.Source.Performance, Req.MinPerformance - 1e-9);
      EXPECT_NEAR(M.Runtime, Req.Volume / M.Source.Performance, 1e-9);
      EXPECT_LE(M.Source.Start, W.startTime().value() + 1e-9);
      EXPECT_GE(M.Source.End, W.startTime().value() + M.Runtime - 1e-9);
    }
  }
}

TEST_P(BatchSearchPropertyTest, AssignmentIsDisjointAndCarvable) {
  OnePassBatchScheduler Scheduler;
  const BatchAssignment A = Scheduler.assign(List, Jobs);
  std::vector<const Window *> Placed;
  for (const auto &W : A.PerJob)
    if (W)
      Placed.push_back(&*W);
  for (size_t I = 0; I < Placed.size(); ++I)
    for (size_t J = I + 1; J < Placed.size(); ++J)
      ASSERT_FALSE(Placed[I]->intersects(*Placed[J]));

  // All committed spans fit inside the original vacancy.
  SlotList Work = List;
  for (const Window *W : Placed)
    ASSERT_TRUE(W->subtractFrom(Work));
  EXPECT_TRUE(Work.checkInvariants());
}

TEST_P(BatchSearchPropertyTest, PlacesSomethingWheneverFeasible) {
  OnePassBatchScheduler Scheduler;
  const BatchAssignment A = Scheduler.assign(List, Jobs);

  // Sequential first pass: one AMP window per job with subtraction.
  AmpSearch Amp;
  AlternativeSearch::Config Cfg;
  Cfg.MaxPasses = 1;
  const AlternativeSet Sequential =
      AlternativeSearch(Amp, Cfg).run(List, Jobs);
  size_t SequentialPlaced = 0;
  for (const auto &PerJob : Sequential.PerJob)
    SequentialPlaced += !PerJob.empty();

  // Guaranteed: if any job has a feasible window on the full list, the
  // scan commits its first window at the earliest feasible anchor, so
  // at least one job is placed. (Whether the one-pass scheme places
  // more or fewer jobs than the sequential sweep is workload-dependent;
  // bench/ablation_batch_once measures it.)
  if (SequentialPlaced > 0) {
    EXPECT_GE(A.placedCount(), 1u);
  }
}

TEST_P(BatchSearchPropertyTest, DeterministicAssignment) {
  OnePassBatchScheduler Scheduler;
  const BatchAssignment A = Scheduler.assign(List, Jobs);
  const BatchAssignment B = Scheduler.assign(List, Jobs);
  ASSERT_EQ(A.placedCount(), B.placedCount());
  for (size_t J = 0; J < Jobs.size(); ++J) {
    ASSERT_EQ(A.PerJob[J].has_value(), B.PerJob[J].has_value());
    if (A.PerJob[J]) {
      EXPECT_DOUBLE_EQ(A.PerJob[J]->startTime().value(),
                       B.PerJob[J]->startTime().value());
      EXPECT_DOUBLE_EQ(A.PerJob[J]->totalCost().value(),
                       B.PerJob[J]->totalCost().value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchSearchPropertyTest,
                         ::testing::Range<uint64_t>(1, 25));
