#!/usr/bin/env bash
# coverage.sh - build the coverage preset, run the full test suite under
# it, and report per-layer line coverage with an enforced floor.
#
# Usage: scripts/coverage.sh [--jobs N] [--floor PCT] [--report-only]
#
#   --jobs N        Parallelism for the build and ctest (default: nproc).
#   --floor PCT     Minimum line coverage required of src/core and of
#                   src/engine, each (default: 75; the documented policy
#                   floor, see docs/STATIC_ANALYSIS.md).
#   --report-only   Skip configure/build/ctest and only re-aggregate the
#                   counters already in build/coverage/.
#
# The aggregation (scripts/coverage_report.py) prefers gcovr when it is
# installed and otherwise drives `gcov --json-format` directly, so the
# report works on a plain GCC toolchain. If no coverage tool exists the
# script FAILS — a silent skip would defeat the floor.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FLOOR=75
REPORT_ONLY=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs)
      [[ $# -ge 2 ]] || { echo "error: --jobs needs an argument" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    --floor)
      [[ $# -ge 2 ]] || { echo "error: --floor needs an argument" >&2; exit 2; }
      FLOOR="$2"; shift 2 ;;
    --report-only)
      REPORT_ONLY=1; shift ;;
    -h|--help)
      sed -n '2,19p' "$0"; exit 0 ;;
    *)
      echo "error: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done

if [[ $REPORT_ONLY -eq 0 ]]; then
  echo "=== coverage: configure + build (preset coverage) ==="
  cmake --preset coverage
  cmake --build --preset coverage -j "$JOBS"
  # Stale counters from a previous run would mix executions of old code.
  find build/coverage -name '*.gcda' -delete
  echo "=== coverage: full test suite ==="
  ctest --preset coverage -j "$JOBS"
fi

echo "=== coverage: per-layer report (floor ${FLOOR}% for src/core, src/engine) ==="
python3 scripts/coverage_report.py \
  --build build/coverage \
  --floor "$FLOOR" \
  --floor-layer src/core --floor-layer src/engine
