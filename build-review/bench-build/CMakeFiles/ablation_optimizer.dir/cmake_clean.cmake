file(REMOVE_RECURSE
  "../bench/ablation_optimizer"
  "../bench/ablation_optimizer.pdb"
  "CMakeFiles/ablation_optimizer.dir/ablation_optimizer.cpp.o"
  "CMakeFiles/ablation_optimizer.dir/ablation_optimizer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
