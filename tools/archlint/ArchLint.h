//===-- tools/archlint/ArchLint.h - Project architecture linter ----*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A zero-dependency linter for the project's own architecture rules —
/// the checks clang-tidy cannot express and that must run on machines
/// without LLVM (docs/STATIC_ANALYSIS.md):
///
///   layer-dag          src/ includes must follow the strict layering
///                      engine -> core -> sim -> support (no upward or
///                      skip-a-layer-backwards edges).
///   raw-assert         library code uses ECOSCHED_CHECK, never assert().
///   banned-io          no std::cout in src/ (library code reports through
///                      return values; diagnostics go to stderr).
///   nondeterminism     no rand()/srand()/time() in src/ (RandomGenerator
///                      and SimClock are the only entropy/clock sources).
///   std-function       no std::function in src/core or src/engine where
///                      FunctionRef applies; owning-storage sites carry an
///                      inline allow entry.
///   header-guard       every header uses the canonical
///                      ECOSCHED_<DIR>_<NAME>_H include guard.
///   pragma-once        #pragma once is banned (guards are the convention).
///   test-registration  every tests/**/*.cpp is listed in a CMakeLists.txt
///                      under tests/, so no test file silently rots.
///
/// The detlint rule family guards the bitwise-determinism contract of
/// the result-affecting layers (src/core, src/engine, src/support —
/// docs/CONCURRENCY.md): results must be identical for any thread-pool
/// size, so iteration-order, pointer-order, and wall-clock hazards are
/// banned at the token level:
///
///   det-unordered-container  no std::unordered_map/std::unordered_set
///                            (hash-order iteration).
///   det-pointer-key          no pointer-typed keys in ordered
///                            containers or std::less/std::hash
///                            (address-order iteration).
///   det-thread-id            no std::this_thread::get_id (behavior
///                            keyed on scheduling).
///   det-wall-clock           no <chrono>/std::chrono (SimClock is the
///                            only time source).
///   det-random-device        no std::random_device (RandomGenerator is
///                            the only entropy source).
///   det-volatile             no volatile (not a synchronization
///                            primitive; hides scheduling dependence).
///   no-legacy-forwarder      the deleted core/VirtualOrganization.h
///                            forwarder must not be reintroduced or
///                            included.
///
/// The fplint rule family guards the epsilon-discipline contract of the
/// quantity-bearing layers (src/sim, src/core, src/engine — see
/// support/Units.h and docs/STATIC_ANALYSIS.md): every boundary
/// decision on a time or price goes through approxEq/Le/Ge/Lt/Gt (or
/// the named exactLess/exactEq escapes), never a bare relational
/// operator. Slot.h (the storage bridge) and Units.h (the convention
/// itself) are the two exempt files:
///
///   fp-raw-compare     a relational operator (<, <=, >, >=) where an
///                      operand lexes as a time/price-named quantity or
///                      a Units .value() escape. Comparisons against the
///                      literal zero are exempt (IEEE-754-exact sign
///                      tests), as are counting identifiers (e.g.
///                      StartIndex) that merely embed a dimension word.
///   fp-raw-epsilon     a hand-rolled tolerance: literal 1e-9 or
///                      TimeEpsilon arithmetic composed with a raw
///                      comparison on the same line instead of the
///                      approx helpers.
///   fp-double-api      a public signature in those layers taking raw
///                      `double` for a parameter named *Time*/*Start*/
///                      *End*/*Price*/*Budget*/*Deadline* instead of the
///                      Units strong types.
///
/// A finding on line L is suppressed when line L or L-1 contains
/// `archlint-allow(<rule>)` — intentional exceptions are documented at
/// the site they occur (e.g. owning std::function members carry
/// `archlint-allow(std-function)` with a rationale).
///
/// The engine operates on in-memory sources so the `--self-test` mode
/// can exercise every rule on synthetic positive and negative cases
/// without touching the filesystem.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_TOOLS_ARCHLINT_H
#define ECOSCHED_TOOLS_ARCHLINT_H

#include <cstddef>
#include <string>
#include <vector>

namespace ecosched {
namespace archlint {

/// One source file, path relative to the repository root with '/'
/// separators (e.g. "src/core/AlpSearch.h").
struct SourceFile {
  std::string Path;
  std::vector<std::string> Lines;
};

/// One rule violation. Suppressed findings (an `archlint-allow(<rule>)`
/// rationale at the site) are carried with the flag set so machine
/// consumers can audit them; they never affect the exit status.
struct Finding {
  std::string Path;
  size_t Line = 0; // 1-based; 0 for whole-file findings.
  std::string Rule;
  std::string Message;
  bool Suppressed = false;
};

/// Runs every rule over \p Files and returns the findings sorted by
/// (path, line). \p Files must contain the CMakeLists.txt files under
/// tests/ for the test-registration rule to see the registrations.
std::vector<Finding> lintFiles(const std::vector<SourceFile> &Files);

/// Renders a finding as "path:line: [rule] message".
std::string formatFinding(const Finding &F);

/// Renders all findings (suppressed ones included) as a JSON array of
/// {"file", "line", "rule", "message", "suppressed"} objects — the
/// machine-readable `--format=json` output.
std::string formatFindingsJson(const std::vector<Finding> &Findings);

/// Built-in synthetic-case suite covering each rule's positive and
/// negative direction. \returns the number of failed cases (0 = pass)
/// and prints one line per failure to stderr.
int runSelfTest();

} // namespace archlint
} // namespace ecosched

#endif // ECOSCHED_TOOLS_ARCHLINT_H
