//===-- sim/SlotList.h - Ordered list of vacant slots --------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordered list of available slots the search algorithms scan
/// (Fig. 1(a) of the paper), together with the slot-subtraction operation
/// of Fig. 1(b): removing a reserved span from a slot splits it into up
/// to two remainder slots that are re-inserted in start order.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_SLOTLIST_H
#define ECOSCHED_SIM_SLOTLIST_H

#include "sim/Slot.h"
#include "support/FunctionRef.h"

#include <cstddef>
#include <vector>

namespace ecosched {

/// A list of vacant slots kept sorted by non-decreasing start time.
///
/// Slots on the same node never overlap; this invariant is established by
/// the producers (generators / domain) and preserved by subtract().
class SlotList {
public:
  SlotList() = default;

  /// Builds a list from arbitrary slots; sorts them by start time.
  explicit SlotList(std::vector<Slot> Slots);

  /// Inserts \p S keeping the start-time order. Zero-length slots are
  /// ignored (the paper: "if slots K1 and K2 have a zero time span, it
  /// is not necessary to add them to the list").
  void insert(const Slot &S);

  /// Subtracts the reserved span [\p Start, \p End) from the slot on
  /// \p NodeId that fully contains it. The containing slot is removed
  /// and up to two remainder slots are inserted (Fig. 1(b)).
  ///
  /// \returns true if a containing slot was found and split; false if no
  /// slot on \p NodeId contains the span (the list is left unchanged).
  bool subtract(int NodeId, double Start, double End);

  /// Binary-search variant of subtract() for callers that know the
  /// exact containing slot (window members carry their source slot):
  /// if a slot equal to \p Container is stored, splits it around
  /// [\p Start, \p End) exactly like subtract() and returns true;
  /// otherwise returns false without modifying the list, and the
  /// caller falls back to the linear subtract(). O(log n) lookup plus
  /// the vector splice instead of a front-to-back scan.
  bool subtractExact(const Slot &Container, double Start, double End);

  /// subtractExact() with a remainder filter: each nonzero remainder
  /// piece is inserted only if \p Keep returns true. SlotFilter uses
  /// this to keep per-job admissible views exact under damage — a
  /// remainder too short for the job must not re-enter its view. The
  /// filter is taken as a non-allocating FunctionRef because this call
  /// sits on the window-damage hot path (once per member span of every
  /// committed window, across every per-job view).
  bool subtractExact(const Slot &Container, double Start, double End,
                     FunctionRef<bool(const Slot &)> Keep);

  /// True if a slot equal to \p S (node, span) is stored. Binary
  /// search; used by the speculative sweep's window-intact check.
  bool containsExact(const Slot &S) const;

  /// Total vacant time across all slots.
  double totalSpan() const;

  /// True if the list is sorted by start and slots never overlap within
  /// a node. Intended for asserts and tests.
  bool checkInvariants() const;

  /// Structural validator: re-checks the sorted order, the absence of
  /// zero-length slots, and per-node disjointness, aborting with a
  /// diagnostic that names the offending slots on the first violation.
  /// The search algorithms invoke it at stage boundaries under
  /// ECOSCHED_DCHECK; it is O(n^2) and intended for debug builds.
  void validate() const;

  size_t size() const { return Slots.size(); }
  bool empty() const { return Slots.empty(); }
  const Slot &operator[](size_t I) const { return Slots[I]; }

  std::vector<Slot>::const_iterator begin() const { return Slots.begin(); }
  std::vector<Slot>::const_iterator end() const { return Slots.end(); }

private:
  std::vector<Slot> Slots;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_SLOTLIST_H
