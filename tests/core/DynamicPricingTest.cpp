//===-- tests/core/DynamicPricingTest.cpp - Pricing engine tests ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/DynamicPricing.h"

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "engine/VirtualOrganization.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

/// One busy node (full window) and one idle node, both priced 2.0.
ComputingDomain makeTwoNodeDomain() {
  ComputingDomain D;
  const int Busy = D.addNode(1.0, 2.0, "busy");
  D.addNode(1.0, 2.0, "idle");
  EXPECT_TRUE(D.addLocalTask(Busy, TimePoint(0.0), TimePoint(100.0)));
  return D;
}

} // namespace

TEST(DynamicPricingTest, NodeUtilization) {
  const ComputingDomain D = makeTwoNodeDomain();
  EXPECT_DOUBLE_EQ(
      PricingEngine::nodeUtilization(D, 0, TimePoint(0.0), TimePoint(100.0)),
      1.0);
  EXPECT_DOUBLE_EQ(
      PricingEngine::nodeUtilization(D, 0, TimePoint(0.0), TimePoint(200.0)),
      0.5);
  EXPECT_DOUBLE_EQ(
      PricingEngine::nodeUtilization(D, 1, TimePoint(0.0), TimePoint(100.0)),
      0.0);
  // Clipped to the window.
  EXPECT_DOUBLE_EQ(
      PricingEngine::nodeUtilization(D, 0, TimePoint(50.0), TimePoint(150.0)),
      0.5);
}

// Regression (graduated): a reservation that merely abuts the sampling
// window — or overlaps it by less than TimeEpsilon — must contribute no
// busy time. The original code used an exact `OverlapEnd > OverlapStart`
// test, so a floating-point sliver of ~1e-12 at the window edge counted
// as load and nudged prices upward; the overlap test is now tolerant
// (the same rule Window::intersects applies to zero-length overlaps).
TEST(DynamicPricingTest, SubEpsilonOverlapIsNotLoad) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 2.0, "edge");
  // The task ends a hair *past* the window start: an exact comparison
  // sees a positive overlap, the tolerant one does not.
  EXPECT_TRUE(
      D.addLocalTask(N, TimePoint(0.0), TimePoint(100.0 + TimeEpsilon / 2)));

  // Graduation 1: exact abutment (no overlap at all) — was already 0.
  EXPECT_DOUBLE_EQ(
      PricingEngine::nodeUtilization(D, N, TimePoint(100.0 + TimeEpsilon / 2),
                                     TimePoint(200.0)),
      0.0);
  // Graduation 2: sub-epsilon overlap — the regression proper. The
  // sliver is below the tolerance, so it must not register as load.
  EXPECT_DOUBLE_EQ(PricingEngine::nodeUtilization(D, N, TimePoint(100.0),
                                                  TimePoint(200.0)),
                   0.0);
  // Graduation 3: an overlap comfortably above the tolerance still
  // counts in full — the fix must not eat real load.
  EXPECT_NEAR(PricingEngine::nodeUtilization(D, N, TimePoint(90.0),
                                             TimePoint(190.0)),
              0.1, 1e-6);
}

TEST(DynamicPricingTest, BusyNodesGetMoreExpensiveIdleCheaper) {
  ComputingDomain D = makeTwoNodeDomain();
  PricingEngine::Config Cfg;
  Cfg.TargetUtilization = 0.5;
  Cfg.Sensitivity = 0.4;
  PricingEngine Engine(Cfg);
  Engine.captureBasePrices(D);

  const std::vector<double> Utilization =
      Engine.update(D, TimePoint(0.0), TimePoint(100.0));
  ASSERT_EQ(Utilization.size(), 2u);
  EXPECT_DOUBLE_EQ(Utilization[0], 1.0);
  EXPECT_DOUBLE_EQ(Utilization[1], 0.0);
  // Busy: 2.0 * (1 + 0.4*(1.0-0.5)) = 2.4; idle: 2.0 * (1 - 0.2) = 1.6.
  EXPECT_DOUBLE_EQ(D.pool().node(0).UnitPrice, 2.4);
  EXPECT_DOUBLE_EQ(D.pool().node(1).UnitPrice, 1.6);
}

TEST(DynamicPricingTest, PricesClampedToBaseFactors) {
  ComputingDomain D = makeTwoNodeDomain();
  PricingEngine::Config Cfg;
  Cfg.TargetUtilization = 0.5;
  Cfg.Sensitivity = 1.0;
  Cfg.MinFactor = 0.5;
  Cfg.MaxFactor = 2.0;
  PricingEngine Engine(Cfg);
  Engine.captureBasePrices(D);

  // Repeated updates push towards the clamps, never beyond.
  for (int I = 0; I < 20; ++I)
    Engine.update(D, TimePoint(0.0), TimePoint(100.0));
  EXPECT_DOUBLE_EQ(D.pool().node(0).UnitPrice, 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(D.pool().node(1).UnitPrice, 2.0 * 0.5);
}

TEST(DynamicPricingTest, AtTargetUtilizationPricesHold) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 3.0);
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(0.0), TimePoint(60.0)));
  PricingEngine::Config Cfg;
  Cfg.TargetUtilization = 0.6;
  PricingEngine Engine(Cfg);
  Engine.captureBasePrices(D);
  // Utilization exactly 0.6.
  Engine.update(D, TimePoint(0.0), TimePoint(100.0));
  EXPECT_DOUBLE_EQ(D.pool().node(N).UnitPrice, 3.0);
}

TEST(DynamicPricingTest, NewSlotsCarryUpdatedPrices) {
  ComputingDomain D = makeTwoNodeDomain();
  PricingEngine Engine;
  Engine.captureBasePrices(D);
  Engine.update(D, TimePoint(0.0), TimePoint(100.0));
  const SlotList Slots = D.vacantSlots(TimePoint(100.0), TimePoint(200.0));
  for (const Slot &S : Slots)
    EXPECT_DOUBLE_EQ(S.UnitPrice, D.pool().node(S.NodeId).UnitPrice);
}

TEST(DynamicPricingTest, IntegratesWithVirtualOrganization) {
  // Idle VO iterations let the pricing engine discount every node via
  // the mutable-domain hook.
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  ComputingDomain D;
  D.addNode(1.0, 4.0);
  D.addNode(2.0, 6.0);
  VirtualOrganization Vo(std::move(D), Scheduler);
  PricingEngine Engine;
  Engine.captureBasePrices(Vo.domain());

  for (int I = 0; I < 3; ++I) {
    const double Start = Vo.now().value();
    Vo.runIteration();
    Engine.update(Vo.mutableDomain(), TimePoint(Start),
                  TimePoint(Vo.now().value()));
  }
  EXPECT_LT(Vo.domain().pool().node(0).UnitPrice, 4.0);
  EXPECT_LT(Vo.domain().pool().node(1).UnitPrice, 6.0);
}

TEST(DynamicPricingTest, ExternalReservationsCountAsDemand) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 2.0);
  ASSERT_TRUE(D.reserve(N, TimePoint(0.0), TimePoint(80.0), /*JobId=*/1));
  EXPECT_DOUBLE_EQ(
      PricingEngine::nodeUtilization(D, N, TimePoint(0.0), TimePoint(100.0)),
      0.8);
}
