file(REMOVE_RECURSE
  "../bench/tab_alternatives_stats"
  "../bench/tab_alternatives_stats.pdb"
  "CMakeFiles/tab_alternatives_stats.dir/tab_alternatives_stats.cpp.o"
  "CMakeFiles/tab_alternatives_stats.dir/tab_alternatives_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_alternatives_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
