//===-- tests/core/FailureInjectionTest.cpp - Node failure handling -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "engine/VirtualOrganization.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

Job makeJob(int Id, int Nodes, double Volume, double MaxPrice) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = Nodes;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = 1.0;
  J.Request.MaxUnitPrice = MaxPrice;
  return J;
}

} // namespace

TEST(DomainFailureTest, FailedNodePublishesNoSlots) {
  ComputingDomain D;
  const int A = D.addNode(1.0, 1.0);
  const int B = D.addNode(1.0, 1.0);
  D.failNode(A, TimePoint(0.0));
  const SlotList Slots = D.vacantSlots(TimePoint(0.0), TimePoint(100.0));
  ASSERT_EQ(Slots.size(), 1u);
  EXPECT_EQ(Slots[0].NodeId, B);
  EXPECT_FALSE(D.isNodeAvailable(A));
  EXPECT_TRUE(D.isNodeAvailable(B));
}

TEST(DomainFailureTest, FailureCancelsUnfinishedOccupancy) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 1.0);
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(0.0), TimePoint(50.0)));      // Finished by t=100.
  ASSERT_TRUE(D.reserve(N, TimePoint(60.0), TimePoint(150.0), /*JobId=*/7)); // Running at 100.
  ASSERT_TRUE(D.reserve(N, TimePoint(200.0), TimePoint(250.0), /*JobId=*/8)); // Future.

  const std::vector<int> Cancelled = D.failNode(N, TimePoint(100.0));
  ASSERT_EQ(Cancelled.size(), 2u);
  EXPECT_EQ(Cancelled[0], 7);
  EXPECT_EQ(Cancelled[1], 8);
  // Only the finished local task remains on the books.
  ASSERT_EQ(D.occupancy(N).size(), 1u);
  EXPECT_EQ(D.occupancy(N)[0].Kind, OccupancyKind::Local);
}

TEST(DomainFailureTest, ReservationRejectedWhileFailed) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 1.0);
  D.failNode(N, TimePoint(0.0));
  EXPECT_FALSE(D.reserve(N, TimePoint(10.0), TimePoint(20.0), 1));
  EXPECT_FALSE(D.addLocalTask(N, TimePoint(10.0), TimePoint(20.0)));
  D.restoreNode(N);
  EXPECT_TRUE(D.reserve(N, TimePoint(10.0), TimePoint(20.0), 1));
}

TEST(DomainFailureTest, CancelReservationsRemovesOnlyThatJob) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 1.0);
  ASSERT_TRUE(D.reserve(N, TimePoint(0.0), TimePoint(50.0), 1));
  ASSERT_TRUE(D.reserve(N, TimePoint(60.0), TimePoint(100.0), 2));
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(110.0), TimePoint(150.0)));
  EXPECT_EQ(D.cancelReservations(N, 1), 1u);
  ASSERT_EQ(D.occupancy(N).size(), 2u);
  EXPECT_EQ(D.occupancy(N)[0].JobId, 2);
  EXPECT_EQ(D.cancelReservations(N, 99), 0u);
}

namespace {

struct VoFixture {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler;
  VoFixture() : Scheduler(Amp, Dp) {}
};

ComputingDomain makeDomain() {
  ComputingDomain D;
  D.addNode(1.0, 1.0, "n0");
  D.addNode(2.0, 1.5, "n1");
  D.addNode(2.0, 1.5, "n2");
  return D;
}

} // namespace

TEST(VoFailureTest, FailureRequeuesRunningJob) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 20.0; // Short: the job is still running.
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);

  Vo.submit(makeJob(1, 2, 100.0, 2.0));
  ASSERT_EQ(Vo.runIteration().Committed, 1u);
  ASSERT_EQ(Vo.queueLength(), 0u);
  ASSERT_GT(Vo.domain().externalLoad(), 0.0);

  // Fail one of the nodes the window occupies; the job must be pulled
  // back into the queue and every sibling reservation released.
  int FailedNode = -1;
  for (const ResourceNode &Node : Vo.domain().pool())
    for (const BusyInterval &B : Vo.domain().occupancy(Node.Id))
      if (B.Kind == OccupancyKind::External)
        FailedNode = Node.Id;
  ASSERT_GE(FailedNode, 0);
  EXPECT_EQ(Vo.injectNodeFailure(FailedNode), 1u);
  EXPECT_EQ(Vo.queueLength(), 1u);
  EXPECT_DOUBLE_EQ(Vo.domain().externalLoad(), 0.0);
  EXPECT_TRUE(Vo.completed().empty());

  // The next iterations reschedule the job on the healthy nodes.
  size_t Committed = 0;
  for (int I = 0; I < 10 && Committed == 0; ++I)
    Committed = Vo.runIteration().Committed;
  EXPECT_EQ(Committed, 1u);
}

TEST(VoFailureTest, FailureOfIdleNodeRequeuesNothing) {
  VoFixture F;
  VirtualOrganization Vo(makeDomain(), F.Scheduler);
  EXPECT_EQ(Vo.injectNodeFailure(0), 0u);
  EXPECT_EQ(Vo.queueLength(), 0u);
}

TEST(VoFailureTest, RepairedNodeSchedulesAgain) {
  VoFixture F;
  ComputingDomain D;
  D.addNode(1.0, 1.0, "only");
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 50.0;
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(std::move(D), F.Scheduler, Cfg);

  Vo.injectNodeFailure(0);
  Vo.submit(makeJob(1, 1, 100.0, 2.0));
  EXPECT_EQ(Vo.runIteration().Committed, 0u); // No slots published.
  EXPECT_EQ(Vo.queueLength(), 1u);

  Vo.repairNode(0);
  EXPECT_EQ(Vo.runIteration().Committed, 1u);
  EXPECT_EQ(Vo.queueLength(), 0u);
}

TEST(VoFailureTest, ResubmittedJobKeepsAttemptCount) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 20.0;
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);

  Vo.submit(makeJob(1, 3, 100.0, 2.0)); // Uses every node.
  ASSERT_EQ(Vo.runIteration().Committed, 1u);
  ASSERT_EQ(Vo.injectNodeFailure(0), 1u);

  // Reschedule on the two healthy nodes; the completed record counts
  // both placement attempts.
  for (int I = 0; I < 20 && Vo.completed().empty(); ++I)
    Vo.runIteration();
  // The job wants 3 nodes but only 2 remain: it can never run again.
  EXPECT_TRUE(Vo.completed().empty());
  EXPECT_EQ(Vo.queueLength(), 1u);

  Vo.repairNode(0);
  for (int I = 0; I < 20 && Vo.completed().empty(); ++I)
    Vo.runIteration();
  ASSERT_EQ(Vo.completed().size(), 1u);
  EXPECT_GE(Vo.completed()[0].Attempts, 2);
}
