//===-- tests/property/SearchPropertyTest.cpp - Search invariants ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// Property tests over randomized instances: every window returned by
/// ALP/AMP must satisfy the resource request; ALP and AMP must agree
/// with the exhaustive O(m^2) backfill oracle on the earliest window
/// start; AMP must dominate ALP (Section 6: "any window which could be
/// found with ALP can also be found by AMP").
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"

#include <gtest/gtest.h>

#include <set>

using namespace ecosched;

namespace {

/// Checks every structural requirement a window must satisfy for a
/// request, independent of which algorithm produced it.
void expectWindowSatisfiesRequest(const Window &W,
                                  const ResourceRequest &Req,
                                  bool EnforcePerSlotCap) {
  ASSERT_EQ(W.size(), static_cast<size_t>(Req.NodeCount));
  std::set<int> Nodes;
  double Cost = 0.0;
  for (const WindowSlot &M : W) {
    // Distinct nodes (follows from per-node slot disjointness).
    EXPECT_TRUE(Nodes.insert(M.Source.NodeId).second);
    // Condition 2a.
    EXPECT_GE(M.Source.Performance, Req.MinPerformance - 1e-9);
    // Runtime consistency and slot coverage (condition 2b).
    EXPECT_NEAR(M.Runtime, Req.Volume / M.Source.Performance, 1e-9);
    EXPECT_LE(M.Source.Start, W.startTime().value() + 1e-9);
    EXPECT_GE(M.Source.End, W.startTime().value() + M.Runtime - 1e-9);
    // Condition 2c (ALP only).
    if (EnforcePerSlotCap) {
      EXPECT_LE(M.Source.UnitPrice, Req.MaxUnitPrice + 1e-9);
    }
    EXPECT_NEAR(M.Cost, M.Source.UnitPrice * M.Runtime, 1e-9);
    Cost += M.Cost;
  }
  EXPECT_NEAR(W.totalCost().value(), Cost, 1e-6);
  if (!EnforcePerSlotCap) {
    EXPECT_LE(W.totalCost().value(), Req.budget().value() + 1e-6);
  }
}

} // namespace

class SearchPropertyTest : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override {
    RandomGenerator Rng(GetParam());
    List = SlotGenerator().generate(Rng);
    Jobs = JobGenerator().generate(Rng);
  }

  SlotList List;
  Batch Jobs;
};

TEST_P(SearchPropertyTest, AlpWindowsSatisfyRequests) {
  AlpSearch Alp;
  for (const Job &J : Jobs) {
    const auto W = Alp.findWindow(List, J.Request);
    if (!W)
      continue;
    expectWindowSatisfiesRequest(*W, J.Request,
                                 /*EnforcePerSlotCap=*/true);
  }
}

TEST_P(SearchPropertyTest, AmpWindowsSatisfyRequests) {
  AmpSearch Amp;
  for (const Job &J : Jobs) {
    const auto W = Amp.findWindow(List, J.Request);
    if (!W)
      continue;
    expectWindowSatisfiesRequest(*W, J.Request,
                                 /*EnforcePerSlotCap=*/false);
  }
}

TEST_P(SearchPropertyTest, AlpMatchesExhaustiveOracleStart) {
  AlpSearch Alp;
  BackfillSearch Oracle(PriceRuleKind::PerSlotCap);
  for (const Job &J : Jobs) {
    const auto Fast = Alp.findWindow(List, J.Request);
    const auto Slow = Oracle.findWindow(List, J.Request);
    ASSERT_EQ(Fast.has_value(), Slow.has_value());
    if (Fast) {
      EXPECT_NEAR(Fast->startTime().value(), Slow->startTime().value(), 1e-9);
    }
  }
}

TEST_P(SearchPropertyTest, AmpMatchesExhaustiveOracleStart) {
  AmpSearch Amp;
  BackfillSearch Oracle(PriceRuleKind::JobBudget);
  for (const Job &J : Jobs) {
    const auto Fast = Amp.findWindow(List, J.Request);
    const auto Slow = Oracle.findWindow(List, J.Request);
    ASSERT_EQ(Fast.has_value(), Slow.has_value());
    if (Fast) {
      EXPECT_NEAR(Fast->startTime().value(), Slow->startTime().value(), 1e-9);
    }
  }
}

TEST_P(SearchPropertyTest, AmpDominatesAlp) {
  AlpSearch Alp;
  AmpSearch Amp;
  for (const Job &J : Jobs) {
    const auto AlpW = Alp.findWindow(List, J.Request);
    if (!AlpW)
      continue;
    // Any ALP window is AMP-admissible: a full-cap window costs at most
    // C per slot-time, i.e. within S = C*t*N. AMP must therefore find a
    // window, and no later than ALP's.
    const auto AmpW = Amp.findWindow(List, J.Request);
    ASSERT_TRUE(AmpW.has_value());
    EXPECT_LE(AmpW->startTime().value(), AlpW->startTime().value() + 1e-9);
  }
}

TEST_P(SearchPropertyTest, SearchIsLinearInExaminedSlots) {
  AlpSearch Alp;
  AmpSearch Amp;
  for (const Job &J : Jobs) {
    SearchStats AlpStats, AmpStats;
    (void)Alp.findWindow(List, J.Request, &AlpStats);
    (void)Amp.findWindow(List, J.Request, &AmpStats);
    // One forward pass: never more examinations than slots.
    EXPECT_LE(AlpStats.SlotsExamined, List.size());
    EXPECT_LE(AmpStats.SlotsExamined, List.size());
  }
}

TEST_P(SearchPropertyTest, ResultIsIndependentOfStatsCollection) {
  AmpSearch Amp;
  for (const Job &J : Jobs) {
    SearchStats Stats;
    const auto A = Amp.findWindow(List, J.Request);
    const auto B = Amp.findWindow(List, J.Request, &Stats);
    ASSERT_EQ(A.has_value(), B.has_value());
    if (A) {
      EXPECT_DOUBLE_EQ(A->startTime().value(), B->startTime().value());
      EXPECT_DOUBLE_EQ(A->totalCost().value(), B->totalCost().value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchPropertyTest,
                         ::testing::Range<uint64_t>(1, 33));
