//===-- core/BackfillSearch.cpp - Quadratic baseline search ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/BackfillSearch.h"

#include "core/SearchCommon.h"

#include <algorithm>

using namespace ecosched;

std::optional<Window>
BackfillSearch::findWindow(const SlotList &List,
                           const ResourceRequest &Request,
                           SearchStats *Stats) const {
  ECOSCHED_CHECK(Request.NodeCount > 0,
                 "request must ask for at least one slot, got {}",
                 Request.NodeCount);
  ECOSCHED_DVALIDATE(List.validate());
  const size_t Needed = static_cast<size_t>(Request.NodeCount);
  const Money Budget = Request.budget();
  SearchStats Local;
  std::vector<const Slot *> Alive;

  // The earliest feasible start is always a release point: the count of
  // alive slots only increases at slot starts. Anchors are examined in
  // start order, so the first feasible anchor gives the earliest window.
  // The deadline horizon is binary-searched (scanEndBefore() sits
  // exactly where the per-anchor deadline break used to fire); the
  // inner rescans stay the deliberate O(m) of the baseline.
  const auto AnchorEnd = List.scanEndBefore(Request.deadline());
  for (auto AnchorIt = List.begin(); AnchorIt != AnchorEnd; ++AnchorIt) {
    const Slot &Anchor = *AnchorIt;
    ++Local.SlotsExamined;
    if (!detail::meetsPerformance(Anchor, Request))
      continue;
    if (PriceRule == PriceRuleKind::PerSlotCap &&
        !detail::meetsPriceCap(Anchor, Request))
      continue;
    const TimePoint StartTime = Anchor.start();

    // Rescan the whole list for slots alive at StartTime. This is the
    // deliberate O(m) inner loop of the baseline.
    Alive.clear();
    for (const Slot &S : List) {
      ++Local.SlotsExamined;
      if (!detail::meetsPerformance(S, Request))
        continue;
      if (PriceRule == PriceRuleKind::PerSlotCap &&
          !detail::meetsPriceCap(S, Request))
        continue;
      if (!S.coversFrom(StartTime, S.runtimeFor(Request.Volume)))
        continue;
      if (!detail::fitsDeadline(S, StartTime, Request))
        continue;
      Alive.push_back(&S);
    }
    if (Alive.size() < Needed)
      continue;
    Local.GroupPeak = std::max(Local.GroupPeak, Alive.size());
    Local.GroupOperations += Alive.size();

    // Choose the N cheapest alive slots; under the per-slot rule every
    // alive slot is admissible, so cheapest-N is as good as any.
    std::partial_sort(Alive.begin(),
                      Alive.begin() + static_cast<long>(Needed),
                      Alive.end(), [&](const Slot *A, const Slot *B) {
                        const Money CostA = detail::slotUsageCost(*A, Request);
                        const Money CostB = detail::slotUsageCost(*B, Request);
                        // Exact comparison: comparator must stay a
                        // strict weak ordering.
                        if (!exactEq(CostA, CostB))
                          return exactLess(CostA, CostB);
                        return A->NodeId < B->NodeId;
                      });
    Alive.resize(Needed);

    if (PriceRule == PriceRuleKind::JobBudget) {
      Money Total(0.0);
      for (const Slot *S : Alive)
        Total = Total + detail::slotUsageCost(*S, Request);
      if (approxGt(Total, Budget))
        continue;
    }
    if (Stats)
      *Stats += Local;
    return detail::buildWindow(StartTime, Alive, Request);
  }
  if (Stats)
    *Stats += Local;
  return std::nullopt;
}

bool BackfillSearch::admits(const Slot &S,
                            const ResourceRequest &Request) const {
  if (!detail::meetsPerformance(S, Request))
    return false;
  return PriceRule != PriceRuleKind::PerSlotCap ||
         detail::meetsPriceCap(S, Request);
}

bool BackfillSearch::admitsRemainder(const Slot &,
                                     const ResourceRequest &) const {
  // Backfill's statics are performance and (optionally) the per-slot
  // price cap — both properties of the node, not the span, so a piece
  // of an admitted slot is always admitted.
  return true;
}
