//===-- tests/sim/WindowTest.cpp - Window model unit tests ----------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/Window.h"

#include "sim/SlotList.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

WindowSlot makeMember(int Node, double Perf, double Price, double Start,
                      double End, double Volume) {
  WindowSlot M;
  M.Source = Slot(Node, Perf, Price, Start, End);
  M.Runtime = Volume / Perf;
  M.Cost = Price * M.Runtime;
  return M;
}

/// Two-member window with heterogeneous nodes: volume 60 on perf 1 and
/// perf 2 nodes starting at t=100.
Window makeHeterogeneousWindow() {
  std::vector<WindowSlot> Members;
  Members.push_back(makeMember(0, 1.0, 2.0, 100.0, 200.0, 60.0));
  Members.push_back(makeMember(1, 2.0, 5.0, 90.0, 150.0, 60.0));
  return Window(TimePoint(100.0), std::move(Members));
}

} // namespace

TEST(WindowTest, RoughRightEdge) {
  const Window W = makeHeterogeneousWindow();
  EXPECT_DOUBLE_EQ(W.startTime().value(), 100.0);
  // Slowest member (perf 1) runs for 60; the fast one for 30.
  EXPECT_DOUBLE_EQ(W.timeSpan().value(), 60.0);
  EXPECT_DOUBLE_EQ(W.endTime().value(), 160.0);
  EXPECT_DOUBLE_EQ(W[0].Runtime, 60.0);
  EXPECT_DOUBLE_EQ(W[1].Runtime, 30.0);
}

TEST(WindowTest, CostAggregation) {
  const Window W = makeHeterogeneousWindow();
  // Costs: 2*60 + 5*30 = 270; unit price sum 7.
  EXPECT_DOUBLE_EQ(W.totalCost().value(), 270.0);
  EXPECT_DOUBLE_EQ(W.unitPriceSum().value(), 7.0);
  EXPECT_EQ(W.size(), 2u);
}

TEST(WindowTest, UsesNode) {
  const Window W = makeHeterogeneousWindow();
  EXPECT_TRUE(W.usesNode(0));
  EXPECT_TRUE(W.usesNode(1));
  EXPECT_FALSE(W.usesNode(2));
}

TEST(WindowTest, IntersectsSameNodeOverlap) {
  const Window A = makeHeterogeneousWindow(); // Node 0 busy [100,160).
  std::vector<WindowSlot> Members;
  Members.push_back(makeMember(0, 1.0, 2.0, 100.0, 200.0, 20.0));
  const Window B(TimePoint(140.0), std::move(Members)); // Node 0 busy [140,160).
  EXPECT_TRUE(A.intersects(B));
  EXPECT_TRUE(B.intersects(A));
}

TEST(WindowTest, NoIntersectionWhenTimeDisjoint) {
  const Window A = makeHeterogeneousWindow(); // Node 0 busy [100,160).
  std::vector<WindowSlot> Members;
  Members.push_back(makeMember(0, 1.0, 2.0, 100.0, 200.0, 20.0));
  const Window B(TimePoint(160.0), std::move(Members)); // Node 0 busy [160,180).
  EXPECT_FALSE(A.intersects(B));
}

TEST(WindowTest, NoIntersectionAcrossNodes) {
  const Window A = makeHeterogeneousWindow();
  std::vector<WindowSlot> Members;
  Members.push_back(makeMember(7, 1.0, 2.0, 100.0, 200.0, 50.0));
  const Window B(TimePoint(100.0), std::move(Members));
  EXPECT_FALSE(A.intersects(B));
}

TEST(WindowTest, PartialOverlapOnlyWithSlowMember) {
  // B overlaps [100,160) on node 0 but is disjoint from the fast
  // member's [100,130) usage on node 1.
  const Window A = makeHeterogeneousWindow();
  std::vector<WindowSlot> Members;
  Members.push_back(makeMember(1, 2.0, 5.0, 90.0, 150.0, 20.0));
  const Window B(TimePoint(135.0), std::move(Members)); // Node 1 busy [135,145).
  EXPECT_FALSE(A.intersects(B)); // Node 1 usage of A ends at 130.
}

TEST(WindowTest, SubtractFromRemovesUsedSpans) {
  SlotList List({Slot(0, 1.0, 2.0, 100.0, 200.0),
                 Slot(1, 2.0, 5.0, 90.0, 150.0)});
  const double Before = List.totalSpan();
  const Window W = makeHeterogeneousWindow();
  ASSERT_TRUE(W.subtractFrom(List));
  // Node 0 loses 60 time units, node 1 loses 30.
  EXPECT_NEAR(List.totalSpan(), Before - 90.0, 1e-9);
  EXPECT_TRUE(List.checkInvariants());
}

TEST(WindowTest, SubtractFromFailsWhenSpanMissing) {
  SlotList List({Slot(0, 1.0, 2.0, 100.0, 200.0)}); // Node 1 missing.
  const Window W = makeHeterogeneousWindow();
  EXPECT_FALSE(W.subtractFrom(List));
}

TEST(WindowTest, SubtractFromFallsBackWhenSourceWasSplit) {
  // The window's node-0 member carries source [100, 200), but outside
  // damage already split that slot into [100, 170) and [190, 200). The
  // exact splice misses, so subtractFrom must fall back to the
  // containment probe, find [100, 170) ⊇ [100, 160), and still report
  // success.
  SlotList List({Slot(0, 1.0, 2.0, 100.0, 200.0),
                 Slot(1, 2.0, 5.0, 90.0, 150.0)});
  ASSERT_TRUE(List.subtract(0, TimePoint(170.0), TimePoint(190.0)));
  const double Before = List.totalSpan();
  const Window W = makeHeterogeneousWindow(); // Node 0 [100,160), node 1 [100,130).
  EXPECT_TRUE(W.subtractFrom(List));
  EXPECT_NEAR(List.totalSpan(), Before - 90.0, 1e-9);
  EXPECT_TRUE(List.checkInvariants());
  EXPECT_TRUE(List.checkIndexConsistency());
}

TEST(WindowTest, SubtractFromReportsFallbackMiss) {
  // Outside damage overlaps the window's reserved span itself: no slot
  // on node 0 contains [100, 160) anymore, so subtractFrom reports
  // false — but the other member's span is still subtracted, which is
  // exactly what the engine's conflict check relies on detecting.
  SlotList List({Slot(0, 1.0, 2.0, 100.0, 200.0),
                 Slot(1, 2.0, 5.0, 90.0, 150.0)});
  ASSERT_TRUE(List.subtract(0, TimePoint(120.0), TimePoint(140.0)));
  const Window W = makeHeterogeneousWindow();
  EXPECT_FALSE(W.subtractFrom(List));
  // Node 1's member [100, 130) was found and removed.
  double Node1Span = 0.0;
  for (const Slot &S : List)
    if (S.NodeId == 1)
      Node1Span += S.length();
  EXPECT_DOUBLE_EQ(Node1Span, 30.0);
  EXPECT_TRUE(List.checkInvariants());
}

TEST(WindowTest, IntersectsIgnoresSubEpsilonOverlap) {
  // Two windows whose usages abut within TimeEpsilon do not intersect:
  // the tolerant comparison treats a sub-epsilon overlap as zero, the
  // same rule the slot algebra uses for zero-length pieces.
  std::vector<WindowSlot> MembersA;
  MembersA.push_back(makeMember(0, 1.0, 2.0, 100.0, 200.0, 40.0));
  const Window A(TimePoint(100.0), std::move(MembersA)); // Node 0 busy [100,140).
  std::vector<WindowSlot> MembersB;
  MembersB.push_back(makeMember(0, 1.0, 2.0, 100.0, 200.0, 20.0));
  const Window B(TimePoint(140.0 - TimeEpsilon / 2.0), std::move(MembersB));
  EXPECT_FALSE(A.intersects(B));
  std::vector<WindowSlot> MembersC;
  MembersC.push_back(makeMember(0, 1.0, 2.0, 100.0, 200.0, 20.0));
  const Window D(TimePoint(139.0), std::move(MembersC)); // Node 0 busy [139,159).
  EXPECT_TRUE(A.intersects(D));
}

TEST(WindowTest, EmptyWindow) {
  Window W;
  EXPECT_TRUE(W.empty());
  EXPECT_DOUBLE_EQ(W.timeSpan().value(), 0.0);
  EXPECT_DOUBLE_EQ(W.totalCost().value(), 0.0);
}
